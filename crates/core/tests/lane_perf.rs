//! Ignored perf probe: per-model scalar vs lane timing. Run with
//! `cargo test -p ccmm-core --release --test lane_perf -- --ignored --nocapture`.

use ccmm_core::enumerate::for_each_observer;
use ccmm_core::model::{CheckScratch, LanePack, LaneScratch};
use ccmm_core::sweep::{sweep_computations, SweepConfig};
use ccmm_core::universe::Universe;
use ccmm_core::{MemoryModel, Model};
use std::ops::ControlFlow;
use std::time::Instant;

fn scalar(u: &Universe, cfg: &SweepConfig, models: &[Model]) -> u64 {
    sweep_computations(
        u,
        cfg,
        || (0u64, CheckScratch::new()),
        |acc, _, c, w| {
            let _ = for_each_observer(c, |phi| {
                for m in models {
                    acc.0 += w * m.contains_with(c, phi, &mut acc.1) as u64;
                }
                ControlFlow::Continue(())
            });
        },
    )
    .expect_complete("scalar")
    .into_iter()
    .map(|(n, _)| n)
    .sum()
}

fn lanes(u: &Universe, cfg: &SweepConfig, models: &[Model]) -> u64 {
    sweep_computations(
        u,
        cfg,
        || (0u64, LanePack::new(), LaneScratch::new()),
        |acc, _, c, w| {
            let (total, pack, ls) = acc;
            pack.prepare(c);
            let mut flush = |pack: &mut LanePack, ls: &mut LaneScratch| {
                let used = pack.used();
                for m in models {
                    *total += w * u64::from((m.contains_lanes(c, pack, ls) & used).count_ones());
                }
                pack.clear_lanes();
            };
            let _ = for_each_observer(c, |phi| {
                pack.push_valid(c, phi);
                if pack.is_full() {
                    flush(pack, ls);
                }
                ControlFlow::Continue(())
            });
            if !pack.is_empty() {
                flush(pack, ls);
            }
        },
    )
    .expect_complete("lanes")
    .into_iter()
    .map(|(n, _, _)| n)
    .sum()
}

#[test]
#[ignore]
fn per_model_timing() {
    let u = Universe::new(5, 1);
    let cfg = SweepConfig::serial().canonical(true);
    for m in [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww] {
        let t = Instant::now();
        let s = scalar(&u, &cfg, &[m]);
        let ts = t.elapsed();
        let t = Instant::now();
        let l = lanes(&u, &cfg, &[m]);
        let tl = t.elapsed();
        assert_eq!(s, l);
        println!(
            "{:<4} scalar {:>8.2?}  lane {:>8.2?}  speedup {:.2}x",
            m.name(),
            ts,
            tl,
            ts.as_secs_f64() / tl.as_secs_f64()
        );
    }
    // Shared enumeration cost vs pure pack overhead: no models at all.
    let t = Instant::now();
    let s = scalar(&u, &cfg, &[]);
    println!("enumeration-only:   {:?} (sum {s})", t.elapsed());
    let t = Instant::now();
    let l = lanes(&u, &cfg, &[]);
    println!("pack-only overhead: {:?} (sum {l})", t.elapsed());
    let all = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];
    let t = Instant::now();
    let s = scalar(&u, &cfg, &all);
    let ts = t.elapsed();
    let t = Instant::now();
    let l = lanes(&u, &cfg, &all);
    let tl = t.elapsed();
    assert_eq!(s, l);
    println!(
        "ALL  scalar {ts:>8.2?}  lane {tl:>8.2?}  speedup {:.2}x",
        ts.as_secs_f64() / tl.as_secs_f64()
    );
}
