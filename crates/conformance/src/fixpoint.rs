//! Fixpoint differential: pins the lane Δ* engine to the scalar worklist.
//!
//! The lane fixpoint ([`ccmm_core::constructible::lanes`]) recomputes the
//! bounded Δ* greatest fixpoint on survivor *masks*; this module proves,
//! per run, that it is bit-identical to the scalar worklist on:
//!
//! * **survivor sets** — every `(C, Φ)` pair of the exhaustive universe
//!   at the harness bound is compared three ways: scalar worklist, lane
//!   fixpoint with the lane kernel, and lane fixpoint with the scalar
//!   kernel (which also pins Stage-A mask materialisation across
//!   kernels). Totals, per-size counts, deletions, and pass counts must
//!   all agree.
//! * **constructibility verdicts** — the one-step augmentation search at
//!   one bound above the harness bound (the canonical bound-5 sweep
//!   under the default config), per model: the lane search must return
//!   exactly the scalar scan's witness, or agree there is none.

use ccmm_core::constructible::lanes::LaneConstructible;
use ccmm_core::constructible::BoundedConstructible;
use ccmm_core::enumerate::for_each_observer;
use ccmm_core::model::Nn;
use ccmm_core::sweep::supervisor::{
    check_constructible_aug_lanes_supervised, check_constructible_aug_supervised, Supervisor,
};
use ccmm_core::sweep::SweepConfig;
use ccmm_core::telemetry::{self, Counter};
use ccmm_core::universe::Universe;
use std::ops::ControlFlow;

use crate::harness::HarnessConfig;

/// What a fixpoint differential run saw.
#[derive(Clone, Debug, Default)]
pub struct FixpointReport {
    /// Survivor pairs compared across the three engines.
    pub pairs: u64,
    /// Constructibility (model, verdict) comparisons.
    pub verdicts: u64,
    /// Human-readable disagreements, in discovery order.
    pub mismatches: Vec<String>,
}

impl FixpointReport {
    /// True iff every lane result matched its scalar twin.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Runs the fixpoint differential on the harness's bound, locations, and
/// thread configuration.
pub fn run_fixpoint(cfg: &HarnessConfig) -> FixpointReport {
    let mut rep = FixpointReport::default();
    let u = Universe::new(cfg.max_nodes, cfg.num_locations);
    let sweep = &cfg.sweep;

    // Survivor sets: scalar worklist vs lane fixpoint under both Stage-A
    // kernels, compared pair by pair over the exhaustive universe.
    let scalar = BoundedConstructible::compute_worklist(&Nn::default(), &u, sweep);
    let lane = LaneConstructible::compute(&Nn::default(), &u, sweep);
    let lane_scalar_kernel = LaneConstructible::compute_supervised(
        &Nn::default(),
        &u,
        sweep,
        &Supervisor::none(),
        None,
        None,
        false,
    )
    .expect_complete("fixpoint differential (scalar kernel)");
    for (what, a, b) in [
        ("total_pairs", scalar.total_pairs(), lane.total_pairs()),
        ("deleted", scalar.deleted, lane.deleted),
        ("passes", scalar.passes, lane.passes),
        ("kernel total_pairs", lane.total_pairs(), lane_scalar_kernel.total_pairs()),
        ("kernel deleted", lane.deleted, lane_scalar_kernel.deleted),
    ] {
        if a != b {
            rep.mismatches.push(format!("fixpoint {what}: scalar {a} vs lane {b}"));
        }
    }
    for n in 0..=u.max_nodes {
        let (a, b) = (scalar.pairs_of_size(n), lane.pairs_of_size(n));
        if a != b {
            rep.mismatches.push(format!("fixpoint pairs_of_size({n}): scalar {a} vs lane {b}"));
        }
    }
    let _ = u.for_each_computation(|c| {
        let _ = for_each_observer(c, |phi| {
            let s = scalar.contains(c, phi);
            let l = lane.contains(c, phi);
            let k = lane_scalar_kernel.contains(c, phi);
            telemetry::count(Counter::ConformanceChecks, 1);
            rep.pairs += 1;
            if s != l || l != k {
                rep.mismatches.push(format!(
                    "fixpoint survivor split (scalar {s}, lane {l}, scalar-kernel {k}) \
                     on C={c:?} phi={phi:?}"
                ));
            }
            ControlFlow::Continue(())
        });
        ControlFlow::Continue(())
    });

    // Constructibility verdicts: the canonical sweep one bound up (bound
    // 5 under the default harness config), per model. The lane search
    // must reproduce the scalar scan's witness exactly.
    let up = Universe::new(cfg.max_nodes + 1, cfg.num_locations);
    let canonical = SweepConfig { canonical: true, ..*sweep };
    for m in &cfg.models {
        let s = check_constructible_aug_supervised(m, &up, &canonical, &Supervisor::none())
            .expect_complete("constructibility differential (scalar)");
        let l = check_constructible_aug_lanes_supervised(m, &up, &canonical, &Supervisor::none())
            .expect_complete("constructibility differential (lane)");
        telemetry::count(Counter::ConformanceChecks, 1);
        rep.verdicts += 1;
        match (s, l) {
            (None, None) => {}
            (Some(s), Some(l)) => {
                if s.c != l.c || s.phi != l.phi || s.extension != l.extension || s.op != l.op {
                    rep.mismatches.push(format!(
                        "constructibility witness split for {m}: scalar (C={:?}, phi={:?}, \
                         op={:?}) vs lane (C={:?}, phi={:?}, op={:?})",
                        s.c, s.phi, s.op, l.c, l.phi, l.op
                    ));
                }
            }
            (s, l) => rep.mismatches.push(format!(
                "constructibility verdict split for {m}: scalar {} vs lane {}",
                if s.is_some() { "dead end" } else { "constructible" },
                if l.is_some() { "dead end" } else { "constructible" },
            )),
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixpoint_differential_is_clean_at_bound_3() {
        let cfg = HarnessConfig {
            max_nodes: 3,
            harvest: false,
            lock_cases: 0,
            random_cases: 0,
            ..HarnessConfig::default()
        };
        let rep = run_fixpoint(&cfg);
        for m in &rep.mismatches {
            eprintln!("{m}");
        }
        assert!(rep.ok(), "{} fixpoint mismatches", rep.mismatches.len());
        assert!(rep.pairs > 0 && rep.verdicts > 0);
    }
}
