//! Counterexample shrinking.
//!
//! Given a `(C, Φ)` pair on which a fast checker and its oracle disagree,
//! [`shrink`] greedily minimises it while preserving the disagreement.
//! Four move kinds, tried strongest-first:
//!
//! 1. **drop a node** — each one-maximal-node prefix, with Φ remapped
//!    (observations of the dropped node fall back to ⊥);
//! 2. **merge two locations** — relabel every op on the higher location
//!    onto the lower one and fuse the Φ rows;
//! 3. **drop an edge** — one-step relaxation, Φ unchanged;
//! 4. **weaken a Φ row entry** — reset one non-forced observation to ⊥.
//!
//! Every accepted move strictly decreases the lexicographic measure
//! (nodes, locations, edges, non-⊥ entries), so shrinking terminates; the
//! result is *1-minimal*: no single move preserves the disagreement.
//! All moves produce valid observer functions when the input is valid
//! (edges and nodes only ever disappear, so Definition 2's conditions
//! survive), and an invalid candidate simply fails the disagreement
//! predicate — both sides reject it.

use ccmm_core::{Computation, Location, ObserverFunction, Op};
use ccmm_dag::NodeId;

/// The result of shrinking: the minimal pair and how many moves it took.
#[derive(Clone, Debug)]
pub struct Shrunk {
    /// The shrunk computation.
    pub c: Computation,
    /// The shrunk observer function.
    pub phi: ObserverFunction,
    /// Number of accepted shrink moves.
    pub steps: usize,
}

/// Remaps Φ onto the prefix obtained by deleting node `dropped` (nodes
/// above it shift down by one); observations *of* the dropped node fall
/// back to ⊥.
fn phi_without_node(
    prefix: &Computation,
    phi: &ObserverFunction,
    dropped: NodeId,
) -> ObserverFunction {
    let old_of = |i: usize| if i < dropped.index() { i } else { i + 1 };
    let new_of = |v: NodeId| {
        NodeId::new(if v.index() > dropped.index() { v.index() - 1 } else { v.index() })
    };
    ObserverFunction::from_fn(prefix, |l, u| {
        if l.index() >= phi.num_locations() {
            return None;
        }
        match phi.get(l, NodeId::new(old_of(u.index()))) {
            Some(v) if v == dropped => None,
            Some(v) => Some(new_of(v)),
            None => None,
        }
    })
}

/// Relabels every op on location `gone` onto `keep` (with `keep < gone`),
/// compacting the locations above `gone` down by one, and fuses the Φ
/// rows (the `keep` row wins where both are defined).
fn merge_locations(
    c: &Computation,
    phi: &ObserverFunction,
    keep: Location,
    gone: Location,
) -> (Computation, ObserverFunction) {
    debug_assert!(keep.index() < gone.index());
    let map = |l: Location| {
        if l == gone {
            keep
        } else if l.index() > gone.index() {
            Location::new(l.index() - 1)
        } else {
            l
        }
    };
    let ops: Vec<Op> = c
        .ops()
        .iter()
        .map(|o| match *o {
            Op::Read(l) => Op::Read(map(l)),
            Op::Write(l) => Op::Write(map(l)),
            Op::Nop => Op::Nop,
        })
        .collect();
    let merged = Computation::new(c.dag().clone(), ops).expect("relabelling preserves op count");
    let phi2 = ObserverFunction::from_fn(&merged, |l, u| {
        if merged.op(u).is_write_to(l) {
            return Some(u); // forced by Definition 2.3
        }
        if l == keep {
            phi.get(keep, u).or_else(|| phi.get(gone, u))
        } else {
            // Unique preimage: the old location mapping onto l.
            let src = if l.index() >= gone.index() { Location::new(l.index() + 1) } else { l };
            phi.get(src, u)
        }
    });
    (merged, phi2)
}

/// Shrinks `(c, phi)` while `disagrees` holds, returning a 1-minimal
/// pair. `disagrees` must hold on the input; it is re-checked on every
/// candidate, so the predicate may be arbitrarily expensive — shrinking
/// calls it once per candidate move per round.
pub fn shrink<F>(c: &Computation, phi: &ObserverFunction, disagrees: F) -> Shrunk
where
    F: Fn(&Computation, &ObserverFunction) -> bool,
{
    debug_assert!(disagrees(c, phi), "shrink needs a disagreeing input");
    let mut cur_c = c.clone();
    let mut cur_phi = phi.clone();
    let mut steps = 0;
    'outer: loop {
        // 1. Drop a maximal node.
        for (prefix, dropped) in cur_c.one_node_prefixes() {
            let phi2 = phi_without_node(&prefix, &cur_phi, dropped);
            if disagrees(&prefix, &phi2) {
                cur_c = prefix;
                cur_phi = phi2;
                steps += 1;
                continue 'outer;
            }
        }
        // 2. Merge a pair of locations.
        for gone in (1..cur_c.num_locations()).rev() {
            for keep in 0..gone {
                let (c2, phi2) =
                    merge_locations(&cur_c, &cur_phi, Location::new(keep), Location::new(gone));
                if disagrees(&c2, &phi2) {
                    cur_c = c2;
                    cur_phi = phi2;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        // 3. Drop an edge.
        let edges: Vec<_> = cur_c.dag().edges().collect();
        for (u, v) in edges {
            let c2 = cur_c.without_edge(u, v).expect("edge exists");
            if disagrees(&c2, &cur_phi) {
                cur_c = c2;
                steps += 1;
                continue 'outer;
            }
        }
        // 4. Weaken one Φ entry to ⊥.
        for l in cur_c.locations() {
            for u in cur_c.nodes() {
                if cur_phi.get(l, u).is_some() && !cur_c.op(u).is_write_to(l) {
                    let phi2 = cur_phi.clone().with(l, u, None);
                    if disagrees(&cur_c, &phi2) {
                        cur_phi = phi2;
                        steps += 1;
                        continue 'outer;
                    }
                }
            }
        }
        break;
    }
    Shrunk { c: cur_c, phi: cur_phi, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::{Lc, MemoryModel, Model, Nn};

    fn l(i: usize) -> Location {
        Location::new(i)
    }
    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn shrinks_padded_figure4_back_to_the_core() {
        // Pad the Figure-4 prefix (∈ NN, ∉ LC) with an extra location, an
        // extra trailing node, and an extra edge; the predicate "in NN
        // but not LC" must shrink back to a 4-node, 1-location pair.
        let w = ccmm_core::witness::figure4_prefix();
        let padded = w.computation.extend(&[n(2)], Op::Write(l(1)));
        let padded = padded.extend(&[n(4)], Op::Read(l(1)));
        let mut phi = ObserverFunction::bottom(2, 6);
        for loc in w.computation.locations() {
            for u in w.computation.nodes() {
                phi.set(loc, u, w.phi.get(loc, u));
            }
        }
        // The padding nodes observe A at l0 (⊥ would break NN via the
        // ⊥-triples of Definition 20) and the new write at l1.
        phi.set(l(0), n(4), Some(n(0)));
        phi.set(l(0), n(5), Some(n(0)));
        phi.set(l(1), n(4), Some(n(4)));
        phi.set(l(1), n(5), Some(n(4)));
        assert!(phi.is_valid_for(&padded));
        let pred = |c: &Computation, p: &ObserverFunction| {
            Nn::default().contains(c, p) && !Lc.contains(c, p)
        };
        assert!(pred(&padded, &phi));
        let s = shrink(&padded, &phi, pred);
        assert_eq!(s.c.node_count(), 4, "Figure 4's prefix is the minimal NN∖LC pattern");
        assert_eq!(s.c.num_locations(), 1);
        assert!(s.steps >= 2, "padding must have been removed in ≥2 moves");
        assert!(pred(&s.c, &s.phi));
    }

    #[test]
    fn shrink_sparsifies_figure4_to_two_edges() {
        // The paper's Figure 4 uses the complete bipartite {A,B}×{C,D};
        // the crossing stays NN∖LC with only one edge into each read, so
        // the shrinker finds a strictly sparser witness than the figure.
        let w = ccmm_core::witness::figure4_prefix();
        let pred = |c: &Computation, p: &ObserverFunction| {
            Nn::default().contains(c, p) && !Lc.contains(c, p)
        };
        let s = shrink(&w.computation, &w.phi, pred);
        assert_eq!(s.c.node_count(), 4, "no node can be dropped");
        assert_eq!(s.c.dag().edges().count(), 2, "two of the four edges are redundant");
        assert!(pred(&s.c, &s.phi));
    }

    #[test]
    fn merge_locations_preserves_validity() {
        // Two-location MP-style pair: merging must stay a valid Φ.
        let c = Computation::from_edges(
            4,
            &[(0, 1), (2, 3)],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Read(l(1)), Op::Read(l(0))],
        );
        let phi =
            ObserverFunction::base(&c).with(l(1), n(2), Some(n(1))).with(l(0), n(3), Some(n(0)));
        assert!(phi.is_valid_for(&c));
        let (c2, phi2) = merge_locations(&c, &phi, l(0), l(1));
        assert_eq!(c2.num_locations(), 1);
        assert!(phi2.is_valid_for(&c2), "merged observer must stay valid");
    }

    #[test]
    fn node_drop_remaps_interior_indices() {
        // Dropping a *middle-indexed* maximal node must shift later
        // observations down. Nodes: 0=W, 1=R∥ (maximal), 2=W, 3=R of 2.
        let c = Computation::from_edges(
            4,
            &[(0, 1), (2, 3)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let phi = ObserverFunction::base(&c).with(l(0), n(3), Some(n(2)));
        // Predicate: node 3's observation survives (under any renaming).
        let pred = |c2: &Computation, p: &ObserverFunction| {
            c2.nodes().any(|u| {
                matches!(c2.op(u), Op::Read(_))
                    && p.get(l(0), u).is_some_and(|w| c2.op(w).is_write_to(l(0)))
            })
        };
        let s = shrink(&c, &phi, pred);
        assert_eq!(s.c.node_count(), 2, "W→R core should remain");
        assert!(pred(&s.c, &s.phi));
        assert!(s.phi.is_valid_for(&s.c));
    }

    #[test]
    fn all_models_agree_after_shrinking_agreement_preserving_pred() {
        // Sanity: a pred that is a real fast-vs-oracle disagreement check
        // on an agreeing pair refuses to shrink (debug_assert guards the
        // input; here we just verify the predicate helper shape works).
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(0)));
        for m in Model::ALL {
            assert_eq!(m.contains(&c, &phi), ccmm_core::Oracle::for_model(m).contains(&c, &phi));
        }
    }
}
