//! # ccmm-conformance — differential testing of the model checkers
//!
//! Every claim in the paper is a set-membership equality (`LC = NN*`, the
//! Figure-1 lattice), so the repo's value hinges on the fast
//! [`ccmm_core::model`] checkers agreeing with their definitions. This
//! crate treats consistency checking as a testable decision procedure:
//! each production checker is differentially tested against its
//! transliterated-from-the-paper [`ccmm_core::oracle::Oracle`] twin over
//! three sources of `(C, Φ)` pairs:
//!
//! 1. **exhaustive** — every pair of a bounded universe, fanned out over
//!    the parallel sweep engine ([`ccmm_core::sweep`]);
//! 2. **random** — proptest-style random dags × random ops × random valid
//!    observer functions ([`sources`]);
//! 3. **harvested** — observer functions read off real BACKER executions
//!    of Cilk workloads ([`ccmm_backer::harvest`]), plus lock-augmented
//!    membership through every critical-section serialization.
//!
//! On any disagreement the [`shrink`] module minimises the witness (drop
//! nodes, merge locations, drop edges, weaken Φ rows) and [`report`]
//! emits it as a `.litmus`-style text file plus Graphviz DOT. The
//! [`harness::self_test`] seeds a deliberate mutation (LC answered as NN
//! on larger computations — exactly the Theorem-22 distinction) and
//! checks the pipeline catches and shrinks it.
//!
//! The [`corpus`] module replays a curated directory of minimal witness
//! computations and golden litmus outcome tables.

#![warn(missing_docs)]

pub mod corpus;
pub mod fixpoint;
pub mod harness;
pub mod lanes;
pub mod report;
pub mod serve;
pub mod shrink;
pub mod sources;

pub use fixpoint::{run_fixpoint, FixpointReport};
pub use harness::{
    mutated_fast, run, run_with, self_test, Disagreement, HarnessConfig, Report,
    ShrunkDisagreement, Source,
};
pub use lanes::{run_lanes, LaneMismatch, LaneReport};
pub use serve::{run_serve, ServeHarnessConfig, ServeReport};
pub use shrink::{shrink, Shrunk};
