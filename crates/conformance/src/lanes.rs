//! Lane-engine conformance: pins `contains_lanes` ≡ 64 × `contains_with`.
//!
//! The lane kernels ([`ccmm_core::model::lane`]) answer 64 membership
//! questions per call; this module proves the verdict masks agree bit-for
//! bit with the scalar checkers over two sources:
//!
//! * **exhaustive** — every `(C, Φ)` pair of the bounded universe, packed
//!   in enumeration order exactly as the lane sweep packs them, including
//!   the underfull tail word of each computation; and
//! * **random** — seeded random computations with a random number of
//!   lanes (1..=64) occupied, so partial packings, invalid observers, and
//!   stale bytes left by a previous flush are all exercised.
//!
//! Verdicts are compared against the *pushed* observer (not the lane's
//! decoded one): an invalid observer is not representable in the pack's
//! write-index encoding, and the contract is that such lanes answer
//! "not a member" — exactly what the scalar checker says about the
//! original Φ.

use crate::sources::{random_computation, random_observer};
use ccmm_core::enumerate::for_each_observer;
use ccmm_core::model::{CheckScratch, LanePack, LaneScratch, LANES};
use ccmm_core::sweep::supervisor::{sweep_supervised, Merge, Supervisor};
use ccmm_core::telemetry::{self, Counter};
use ccmm_core::universe::Universe;
use ccmm_core::{Computation, MemoryModel, Model, ObserverFunction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::ControlFlow;

use crate::harness::HarnessConfig;

/// One lane verdict that disagrees with its scalar twin.
#[derive(Clone, Debug)]
pub struct LaneMismatch {
    /// The model whose lane kernel split from its scalar checker.
    pub model: Model,
    /// `"exhaustive"` or `"random"`.
    pub source: &'static str,
    /// The computation the pack was prepared for.
    pub c: Computation,
    /// The observer that was pushed into the disagreeing lane.
    pub phi: ObserverFunction,
    /// The lane index within its word.
    pub lane: usize,
    /// What the lane kernel said.
    pub lane_verdict: bool,
    /// What the scalar checker said.
    pub scalar_verdict: bool,
}

impl fmt::Display for LaneMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} lane {}: lane says {}, scalar says {} on C={:?} phi={:?}",
            self.source,
            self.model,
            self.lane,
            self.lane_verdict,
            self.scalar_verdict,
            self.c,
            self.phi
        )
    }
}

/// What a lane differential run saw.
#[derive(Clone, Debug, Default)]
pub struct LaneReport {
    /// Lane words evaluated (per model-set, i.e. flushes).
    pub words: u64,
    /// Individual lane-vs-scalar verdict comparisons (lanes × models).
    pub verdicts: u64,
    /// Disagreements, in discovery order.
    pub mismatches: Vec<LaneMismatch>,
}

impl LaneReport {
    /// True iff every lane verdict matched its scalar twin.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl Merge for LaneReport {
    fn merge(&mut self, other: Self) {
        self.words += other.words;
        self.verdicts += other.verdicts;
        self.mismatches.extend(other.mismatches);
    }
}

/// Compares every (model, occupied lane) verdict of one packed word
/// against the scalar checker on the observer that was pushed there.
fn check_word(
    rep: &mut LaneReport,
    source: &'static str,
    c: &Computation,
    origs: &[ObserverFunction],
    pack: &LanePack,
    lanes: &mut LaneScratch,
    check: &mut CheckScratch,
) {
    debug_assert_eq!(pack.used().count_ones() as usize, origs.len());
    rep.words += 1;
    for m in Model::ALL {
        let verdict = m.contains_lanes(c, pack, lanes);
        for (lane, phi) in origs.iter().enumerate() {
            let lane_verdict = verdict >> lane & 1 == 1;
            let scalar_verdict = m.contains_with(c, phi, check);
            telemetry::count(Counter::ConformanceChecks, 1);
            rep.verdicts += 1;
            if lane_verdict != scalar_verdict {
                rep.mismatches.push(LaneMismatch {
                    model: m,
                    source,
                    c: c.clone(),
                    phi: phi.clone(),
                    lane,
                    lane_verdict,
                    scalar_verdict,
                });
            }
        }
    }
}

/// Runs the lane differential: the exhaustive bounded sweep plus seeded
/// random partial packings, reusing the harness's bound/seed/thread
/// configuration.
pub fn run_lanes(cfg: &HarnessConfig) -> LaneReport {
    let u = Universe::new(cfg.max_nodes, cfg.num_locations);
    let mut report = sweep_supervised(
        &u,
        &cfg.sweep,
        &Supervisor::none(),
        LaneReport::default,
        || (LanePack::new(), LaneScratch::new(), CheckScratch::new(), Vec::new()),
        |rep, xs, _, c, _| {
            let (pack, lanes, check, origs) = xs;
            pack.prepare(c);
            origs.clear();
            let _ = for_each_observer(c, |phi| {
                pack.push(c, phi);
                origs.push(phi.clone());
                if pack.is_full() {
                    check_word(rep, "exhaustive", c, origs, pack, lanes, check);
                    pack.clear_lanes();
                    origs.clear();
                }
                ControlFlow::Continue(())
            });
            if !pack.is_empty() {
                check_word(rep, "exhaustive", c, origs, pack, lanes, check);
                pack.clear_lanes();
                origs.clear();
            }
        },
    )
    .expect_complete("lane conformance sweep");

    // Random partial packings: a fresh computation per case, 1..=64 lanes
    // occupied, no zeroing between cases — stale bytes from the previous
    // word must stay unobservable.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x4c41_4e45); // ^ "LANE"
    let mut pack = LanePack::new();
    let mut lanes = LaneScratch::new();
    let mut check = CheckScratch::new();
    for _ in 0..cfg.random_cases {
        let c = random_computation(&mut rng, cfg.max_random_nodes, cfg.random_locations);
        pack.prepare(&c);
        let k = rng.gen_range(1..=LANES);
        let mut origs = Vec::with_capacity(k);
        for _ in 0..k {
            let phi = random_observer(&mut rng, &c);
            pack.push(&c, &phi);
            origs.push(phi);
        }
        check_word(&mut report, "random", &c, &origs, &pack, &mut lanes, &mut check);
        pack.clear_lanes();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_differential_is_clean_at_bound_3() {
        let cfg = HarnessConfig {
            max_nodes: 3,
            random_cases: 48,
            harvest: false,
            lock_cases: 0,
            ..HarnessConfig::default()
        };
        let rep = run_lanes(&cfg);
        for m in &rep.mismatches {
            eprintln!("{m}");
        }
        assert!(rep.ok(), "{} lane mismatches", rep.mismatches.len());
        assert!(rep.words > 0 && rep.verdicts > 0);
        // Underfull tails and the 7-model panel are both covered.
        assert!(rep.verdicts >= rep.words * Model::ALL.len() as u64);
    }
}
