//! Differential testing of the serve pipeline: wire format → parse →
//! cached handler vs direct `Model::contains`.
//!
//! The serve path adds four layers on top of the checkers — frame
//! encoding, the request/reply text grammar, the canonical verdict
//! cache, and the panic-quarantined handler — and each layer is a place
//! a verdict could silently rot. This harness drives (C, Φ) pairs from
//! the same three source shapes the main harness uses (exhaustive small
//! universe, litmus/corpus shapes, seeded random) through the *full*
//! pipeline: render the pair into a request payload, frame it, decode
//! the frame, parse the request, handle it against the shared verdict
//! cache, encode the reply, decode the reply, and compare every verdict
//! line against a direct `Model::contains` call. Every pair is asked
//! **twice** — the second ask must be answered by the cache and must
//! carry bit-identical verdicts, which is the memoization-soundness
//! claim (hash-consing to the canonical representative never changes an
//! answer) tested end to end.

use ccmm_core::fault::payload_string;
use ccmm_core::serve::{
    encode_frame, render_request, verdict_line, FrameDecoder, FrameEvent, Handler, Reply, Request,
    Verb, VerdictCache, SERVED_MODELS,
};
use ccmm_core::universe::Universe;
use ccmm_core::{enumerate, Computation, MemoryModel, ObserverFunction};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::ControlFlow;
use std::sync::Arc;

use crate::sources;

/// Configuration for [`run_serve`].
#[derive(Clone, Debug)]
pub struct ServeHarnessConfig {
    /// Exhaustive universe node budget (0 skips the exhaustive source).
    pub max_nodes: usize,
    /// Locations in the exhaustive universe.
    pub num_locations: usize,
    /// Random pairs to draw.
    pub random: usize,
    /// Seed for the random source.
    pub seed: u64,
    /// Verdict-cache capacity — deliberately small by default so the
    /// differential also exercises eviction + recompute.
    pub cache_capacity: usize,
}

impl Default for ServeHarnessConfig {
    fn default() -> Self {
        ServeHarnessConfig {
            max_nodes: 3,
            num_locations: 1,
            random: 64,
            seed: 0xCC5E,
            cache_capacity: 64,
        }
    }
}

/// One serve-pipeline disagreement (kept small: the pair re-renders).
#[derive(Debug, Clone)]
pub struct ServeMismatch {
    /// Which source produced the pair.
    pub source: &'static str,
    /// What went wrong.
    pub detail: String,
}

/// Tallies from [`run_serve`].
#[derive(Debug, Default)]
pub struct ServeReport {
    /// Pairs driven through the pipeline.
    pub pairs: u64,
    /// Individual verdict comparisons (pairs × models × asks).
    pub checks: u64,
    /// Second asks answered by the cache.
    pub cache_rechecks: u64,
    /// Verdict or protocol disagreements (empty = conformant).
    pub mismatches: Vec<ServeMismatch>,
}

impl ServeReport {
    /// Whether the serve pipeline agreed everywhere.
    pub fn ok(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Pushes one pair through frame → parse → handler → reply and compares
/// against direct checks. Returns the reply's verdict body.
fn drive_pair(
    handler: &mut Handler,
    c: &Computation,
    phi: &ObserverFunction,
    source: &'static str,
    expect_cached: bool,
    report: &mut ServeReport,
) {
    let payload = render_request(&Request {
        verb: Verb::Models { c: c.clone(), phi: phi.clone() },
        deadline_ms: None,
    });
    // Through the real wire format, chunked to stress reassembly.
    let wire = encode_frame(payload.as_bytes());
    let mut decoder = FrameDecoder::new();
    let mid = wire.len() / 2;
    decoder.push(&wire[..mid]);
    decoder.push(&wire[mid..]);
    let Some(FrameEvent::Frame(framed)) = decoder.next_event() else {
        report.mismatches.push(ServeMismatch {
            source,
            detail: "frame did not survive encode → chunked decode".to_string(),
        });
        return;
    };
    let reply_wire = handler.handle(&framed, false).encode();
    let reply = match Reply::decode(&reply_wire) {
        Ok(r) => r,
        Err(e) => {
            report
                .mismatches
                .push(ServeMismatch { source, detail: format!("reply failed to decode: {e}") });
            return;
        }
    };
    let Reply::Ok { body, cached } = reply else {
        report
            .mismatches
            .push(ServeMismatch { source, detail: format!("expected ok reply, got {reply:?}") });
        return;
    };
    if expect_cached {
        if cached {
            report.cache_rechecks += 1;
        } else {
            report.mismatches.push(ServeMismatch {
                source,
                detail: "second ask of an identical pair was not fully cached".to_string(),
            });
        }
    }
    for (i, m) in SERVED_MODELS.iter().enumerate() {
        report.checks += 1;
        let want = verdict_line(*m, m.contains(c, phi));
        match body.get(i) {
            Some(got) if *got == want => {}
            got => report.mismatches.push(ServeMismatch {
                source,
                detail: format!(
                    "{} verdict drifted{}: served {:?}, direct check says {:?}",
                    m.name(),
                    if cached { " (cached)" } else { "" },
                    got,
                    want
                ),
            }),
        }
    }
}

/// Runs the serve-pipeline differential. Deterministic per config.
pub fn run_serve(cfg: &ServeHarnessConfig) -> ServeReport {
    let mut report = ServeReport::default();
    let cache = Arc::new(VerdictCache::new(4, cfg.cache_capacity));
    let mut handler = Handler::new(Arc::clone(&cache), None);
    let mut drive = |c: &Computation,
                     phi: &ObserverFunction,
                     source: &'static str,
                     report: &mut ServeReport| {
        report.pairs += 1;
        drive_pair(&mut handler, c, phi, source, false, report);
        // Ask again: the cache must answer, identically.
        drive_pair(&mut handler, c, phi, source, true, report);
    };

    // Source 1: exhaustive — every pair of the bounded universe.
    if cfg.max_nodes > 0 {
        let u = Universe::new(cfg.max_nodes, cfg.num_locations);
        let _ = u.for_each_computation(|c| {
            let _ = enumerate::for_each_observer(c, |phi| {
                drive(c, phi, "exhaustive", &mut report);
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        });
    }

    // Source 2: the litmus corpus shapes (MP/SB/CoRR/IRIW and friends).
    for t in ccmm_core::litmus::standard_tests() {
        let phi = ObserverFunction::base(&t.computation);
        drive(&t.computation, &phi, "litmus", &mut report);
    }
    for w in [
        ccmm_core::witness::figure2(),
        ccmm_core::witness::figure3(),
        ccmm_core::witness::figure4_prefix(),
    ] {
        drive(&w.computation, &w.phi, "witness", &mut report);
    }

    // Source 3: seeded random pairs (larger, uncanonical shapes).
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..cfg.random {
        let c = sources::random_computation(&mut rng, 6, 2);
        let phi = sources::random_observer(&mut rng, &c);
        drive(&c, &phi, "random", &mut report);
    }

    // The cache's own books must balance exactly.
    let s = cache.stats();
    if s.hits + s.misses != report.pairs * 2 * SERVED_MODELS.len() as u64 {
        report.mismatches.push(ServeMismatch {
            source: "cache",
            detail: format!(
                "hits ({}) + misses ({}) != lookups ({})",
                s.hits,
                s.misses,
                report.pairs * 2 * SERVED_MODELS.len() as u64
            ),
        });
    }

    // Finally: a request that panics must degrade without poisoning the
    // handler for the pairs that follow (quarantine differential).
    let quarantine_probe = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let ping = render_request(&Request { verb: Verb::Ping, deadline_ms: None });
        let degraded = handler.handle(ping.as_bytes(), true);
        let ok = handler.handle(ping.as_bytes(), false);
        (degraded, ok)
    }));
    match quarantine_probe {
        Ok((Reply::Degraded { .. }, Reply::Ok { .. })) => {}
        Ok((d, o)) => report.mismatches.push(ServeMismatch {
            source: "quarantine",
            detail: format!("expected degraded-then-ok, got {d:?} then {o:?}"),
        }),
        Err(p) => report.mismatches.push(ServeMismatch {
            source: "quarantine",
            detail: format!("handler leaked a panic: {}", payload_string(p)),
        }),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_pipeline_agrees_with_direct_checks() {
        let report = run_serve(&ServeHarnessConfig::default());
        assert!(report.pairs > 50, "sources actually produced pairs: {}", report.pairs);
        assert!(report.cache_rechecks > 0, "second asks hit the cache");
        assert!(
            report.ok(),
            "serve pipeline disagreed {} time(s); first: {:?}",
            report.mismatches.len(),
            report.mismatches.first()
        );
    }

    #[test]
    fn run_serve_is_deterministic_per_seed() {
        let cfg = ServeHarnessConfig { max_nodes: 2, random: 16, ..Default::default() };
        let a = run_serve(&cfg);
        let b = run_serve(&cfg);
        assert_eq!((a.pairs, a.checks, a.cache_rechecks), (b.pairs, b.checks, b.cache_rechecks));
        assert!(a.ok() && b.ok());
    }
}
