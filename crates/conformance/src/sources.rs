//! `(C, Φ)` pair generators for the harness's random source.
//!
//! Deterministic for a fixed seed: the generators draw from a caller
//! provided [`rand::rngs::StdRng`] only, so a conformance run is
//! reproducible from its seed regardless of thread count.

use ccmm_core::{Computation, Location, ObserverFunction, Op};
use ccmm_dag::generate;
use rand::rngs::StdRng;
use rand::Rng;

/// A random computation: a random dag shape (G(n,p), layered, or
/// series-parallel) with uniformly random ops over `num_locations`
/// locations. `2 ≤ node count ≤ max_nodes`.
pub fn random_computation(rng: &mut StdRng, max_nodes: usize, num_locations: usize) -> Computation {
    let n = rng.gen_range(2..=max_nodes.max(2));
    let dag = match rng.gen_range(0..3u32) {
        0 => generate::gnp_dag(n, rng.gen_range(0.15..0.6), rng),
        1 => {
            let layers = rng.gen_range(1..=n.min(3));
            let width = n.div_ceil(layers).max(1);
            let mut d = generate::layered_dag(layers, width, 2, rng);
            // Layered dags can overshoot n; regenerate as G(n,p) if so.
            if d.node_count() > max_nodes {
                d = generate::gnp_dag(n, 0.3, rng);
            }
            d
        }
        _ => {
            // Lowered fork/join nodes can over- or undershoot n; fall
            // back to G(n,p) when outside [2, max_nodes].
            let leaves = (n / 2).max(2);
            let mut d = generate::random_sp_dag(leaves, 0.5, rng);
            if d.node_count() > max_nodes.max(2) || d.node_count() < 2 {
                d = generate::gnp_dag(n, 0.3, rng);
            }
            d
        }
    };
    let ops: Vec<Op> = (0..dag.node_count()).map(|_| random_op(rng, num_locations)).collect();
    Computation::new(dag, ops).expect("one op per node")
}

fn random_op(rng: &mut StdRng, num_locations: usize) -> Op {
    let l = Location::new(rng.gen_range(0..num_locations.max(1)));
    match rng.gen_range(0..5u32) {
        0 => Op::Nop,
        1 | 2 => Op::Write(l),
        _ => Op::Read(l),
    }
}

/// A uniformly random *valid* observer function for `c`: each free slot
/// (Definition 2 forces writes to observe themselves) independently picks
/// ⊥ or any write to the location the node does not strictly precede.
pub fn random_observer(rng: &mut StdRng, c: &Computation) -> ObserverFunction {
    ObserverFunction::from_fn(c, |l, u| {
        if c.op(u).is_write_to(l) {
            return Some(u);
        }
        let cands: Vec<_> = c.writes_to(l).iter().copied().filter(|&w| !c.precedes(u, w)).collect();
        // ⊥ plus each candidate, uniform.
        let k = rng.gen_range(0..=cands.len());
        if k == 0 {
            None
        } else {
            Some(cands[k - 1])
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_pairs_are_valid_and_bounded() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let c = random_computation(&mut rng, 7, 2);
            assert!(c.node_count() >= 2 && c.node_count() <= 7, "bad size {}", c.node_count());
            let phi = random_observer(&mut rng, &c);
            assert!(phi.is_valid_for(&c), "invalid random observer for {c:?}: {phi:?}");
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let c = random_computation(&mut rng, 6, 2);
            let phi = random_observer(&mut rng, &c);
            (c, phi)
        };
        assert_eq!(run(42), run(42));
        let (a, _) = run(42);
        let (b, _) = run(43);
        // Overwhelmingly likely to differ; both still valid computations.
        let _ = (a, b);
    }

    #[test]
    fn random_observers_cover_non_base_choices() {
        // With a write and a later read, some draws must pick the write.
        let c = Computation::from_edges(
            2,
            &[(0, 1)],
            vec![Op::Write(Location::new(0)), Op::Read(Location::new(0))],
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut saw_some = false;
        let mut saw_none = false;
        for _ in 0..64 {
            let phi = random_observer(&mut rng, &c);
            match phi.get(Location::new(0), ccmm_dag::NodeId::new(1)) {
                Some(_) => saw_some = true,
                None => saw_none = true,
            }
        }
        assert!(saw_some && saw_none, "both observer choices should appear");
    }
}
