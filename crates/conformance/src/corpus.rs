//! The curated witness corpus and golden litmus outcome tables.
//!
//! A corpus entry is a `.litmus` file with three `---`-separated
//! sections:
//!
//! ```text
//! # Figure 4 prefix: in every dag-consistent model, out of SC and LC.
//! n0: W(0)
//! n1: W(0)
//! n2: R(0) <- n0 n1
//! n3: R(0) <- n0 n1
//! ---
//! l0: n0 n1 n0 n1
//! ---
//! SC: out
//! LC: out
//! NN: in
//! ```
//!
//! The computation and observer use [`ccmm_core::parse`] syntax; the last
//! section asserts membership per model (`in`/`out`), for any subset of
//! the concrete models. [`check_entry`] replays each assertion against
//! *both* the fast checker and the definitional oracle, so a corpus file
//! pins three things at once: the curated expectation, the production
//! code, and the transliterated definitions.
//!
//! A golden file (`.golden`) pins a litmus test's full outcome table per
//! model in the format of [`render_golden`]; regenerate with the corpus
//! replay test's bless mode (`CCMM_BLESS=1`).

use ccmm_core::litmus::LitmusTest;
use ccmm_core::parse::{parse_computation, parse_observer};
use ccmm_core::{Computation, MemoryModel, Model, ObserverFunction, Oracle};
use std::io;
use std::path::Path;

/// One parsed corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Entry name (the file stem).
    pub name: String,
    /// The computation.
    pub computation: Computation,
    /// The observer function.
    pub phi: ObserverFunction,
    /// Expected membership per model, in file order.
    pub expect: Vec<(Model, bool)>,
}

/// Parses a model name as used in corpus files (`SC`, `LC`, `NN`, …).
pub fn parse_model(s: &str) -> Option<Model> {
    match s.trim().to_ascii_uppercase().as_str() {
        "SC" => Some(Model::Sc),
        "LC" => Some(Model::Lc),
        "NN" => Some(Model::Nn),
        "NW" => Some(Model::Nw),
        "WN" => Some(Model::Wn),
        "WW" => Some(Model::Ww),
        "ANY" => Some(Model::Any),
        _ => None,
    }
}

/// Parses one corpus entry from its text.
pub fn parse_entry(name: &str, text: &str) -> Result<CorpusEntry, String> {
    let sections: Vec<&str> = text.split("\n---").collect();
    if sections.len() != 3 {
        return Err(format!("{name}: expected 3 `---`-separated sections, got {}", sections.len()));
    }
    let computation =
        parse_computation(sections[0]).map_err(|e| format!("{name}: computation: {e}"))?;
    let phi =
        parse_observer(sections[1], &computation).map_err(|e| format!("{name}: observer: {e}"))?;
    let mut expect = Vec::new();
    for raw in sections[2].lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (m, verdict) =
            line.split_once(':').ok_or_else(|| format!("{name}: expected `MODEL: in|out`"))?;
        let model =
            parse_model(m).ok_or_else(|| format!("{name}: unknown model `{}`", m.trim()))?;
        let member = match verdict.trim() {
            "in" => true,
            "out" => false,
            other => return Err(format!("{name}: expected in|out, got `{other}`")),
        };
        expect.push((model, member));
    }
    if expect.is_empty() {
        return Err(format!("{name}: no membership assertions"));
    }
    Ok(CorpusEntry { name: name.to_string(), computation, phi, expect })
}

/// Replays an entry: every membership assertion must match both the fast
/// checker and the oracle. Returns the failures (empty = pass).
pub fn check_entry(e: &CorpusEntry) -> Vec<String> {
    let mut failures = Vec::new();
    if !e.phi.is_valid_for(&e.computation) {
        failures.push(format!("{}: observer is not valid for the computation", e.name));
        return failures;
    }
    for &(m, expected) in &e.expect {
        let fast = m.contains(&e.computation, &e.phi);
        let oracle = Oracle::for_model(m).contains(&e.computation, &e.phi);
        if fast != expected {
            failures.push(format!(
                "{}: {m} fast checker says {fast}, corpus expects {expected}",
                e.name
            ));
        }
        if oracle != expected {
            failures
                .push(format!("{}: {m} oracle says {oracle}, corpus expects {expected}", e.name));
        }
    }
    failures
}

/// Loads every `.litmus` entry in `dir`, sorted by file name.
pub fn load_dir(dir: &Path) -> io::Result<Vec<CorpusEntry>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    paths.sort();
    let mut entries = Vec::new();
    for p in paths {
        let name = p.file_stem().map(|s| s.to_string_lossy().into_owned()).unwrap_or_default();
        let text = std::fs::read_to_string(&p)?;
        let entry =
            parse_entry(&name, &text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        entries.push(entry);
    }
    Ok(entries)
}

/// Renders a litmus test's outcome table: one `MODEL: o o …` line per
/// concrete model, each outcome a comma-joined value tuple, outcomes in
/// the set's sorted order.
pub fn render_golden(test: &LitmusTest) -> String {
    let mut out = format!("# {}: {}\n", test.name, test.note);
    for m in crate::report::CONCRETE_MODELS {
        let outcomes = test.outcomes(&m);
        out.push_str(&format!("{m}:"));
        for o in outcomes {
            let vals: Vec<String> = o.iter().map(u64::to_string).collect();
            out.push_str(&format!(" {}", vals.join(",")));
        }
        out.push('\n');
    }
    out
}

/// Compares a golden file's text against the freshly computed table,
/// ignoring comments and blank lines. Returns the mismatching lines.
pub fn check_golden(test: &LitmusTest, golden_text: &str) -> Vec<String> {
    let strip = |s: &str| -> Vec<String> {
        s.lines()
            .map(|l| l.split('#').next().unwrap_or("").trim().to_string())
            .filter(|l| !l.is_empty())
            .collect()
    };
    let fresh = strip(&render_golden(test));
    let stored = strip(golden_text);
    let mut failures = Vec::new();
    if fresh.len() != stored.len() {
        failures.push(format!(
            "{}: golden has {} lines, fresh table has {}",
            test.name,
            stored.len(),
            fresh.len()
        ));
    }
    for (f, s) in fresh.iter().zip(&stored) {
        if f != s {
            failures.push(format!("{}: golden `{s}` != fresh `{f}`", test.name));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::litmus::standard_tests;

    const FIG4: &str = "\
# Figure 4 prefix
n0: W(0)
n1: W(0)
n2: R(0) <- n0 n1
n3: R(0) <- n0 n1
---
l0: n0 n1 n0 n1
---
SC: out
LC: out
NN: in
WW: in
";

    #[test]
    fn figure4_entry_parses_and_checks() {
        let e = parse_entry("fig4", FIG4).expect("parses");
        assert_eq!(e.computation.node_count(), 4);
        assert_eq!(e.expect.len(), 4);
        assert!(check_entry(&e).is_empty(), "{:?}", check_entry(&e));
    }

    #[test]
    fn wrong_expectation_is_reported_twice() {
        let flipped = FIG4.replace("NN: in", "NN: out");
        let e = parse_entry("fig4", &flipped).expect("parses");
        let failures = check_entry(&e);
        // Both the fast checker and the oracle disagree with the file.
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().all(|f| f.contains("NN")));
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(parse_entry("x", "n0: W(0)\n").is_err(), "missing sections");
        let bad_model = FIG4.replace("SC: out", "XX: out");
        assert!(parse_entry("x", &bad_model).is_err());
        let bad_verdict = FIG4.replace("SC: out", "SC: maybe");
        assert!(parse_entry("x", &bad_verdict).is_err());
    }

    #[test]
    fn golden_roundtrip_detects_tampering() {
        let test = &standard_tests()[0]; // MP
        let golden = render_golden(test);
        assert!(check_golden(test, &golden).is_empty());
        let tampered = golden.replacen("SC:", "SC: 9,9", 1);
        assert!(!check_golden(test, &tampered).is_empty());
    }
}
