//! Rendering and emitting shrunk witnesses.
//!
//! A witness file is the corpus `.litmus` format (see [`crate::corpus`]):
//! the computation in [`ccmm_core::parse`] syntax, `---`, the observer
//! function, `---`, one `MODEL: in|out` membership line per concrete
//! model — definitional truth, computed with the oracles. Header comments
//! record the provenance (model, source, both checkers' answers, shrink
//! steps), so a witness file is self-describing and replayable through
//! the corpus checker.

use crate::harness::ShrunkDisagreement;
use ccmm_core::parse::{render_computation, render_observer};
use ccmm_core::{MemoryModel, Model, Oracle};
use std::io;
use std::path::{Path, PathBuf};

/// The six concrete models whose membership a witness file records.
pub const CONCRETE_MODELS: [Model; 6] =
    [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];

/// Renders a shrunk disagreement as a self-describing `.litmus` witness.
pub fn render_witness(d: &ShrunkDisagreement) -> String {
    let o = &d.original;
    let mut out = String::new();
    out.push_str(&format!(
        "# conformance witness: {} fast={} oracle={} (source: {})\n",
        o.model, o.fast, o.oracle, o.source
    ));
    out.push_str(&format!(
        "# shrunk from {} nodes / {} edges in {} move(s)\n",
        o.c.node_count(),
        o.c.dag().edges().count(),
        d.shrunk.steps
    ));
    out.push_str(&render_computation(&d.shrunk.c));
    out.push_str("---\n");
    out.push_str(&render_observer(&d.shrunk.phi));
    out.push_str("---\n");
    for m in CONCRETE_MODELS {
        let member = Oracle::for_model(m).contains(&d.shrunk.c, &d.shrunk.phi);
        out.push_str(&format!("{}: {}\n", m, if member { "in" } else { "out" }));
    }
    out
}

/// Writes `<dir>/<stem>.litmus` and `<dir>/<stem>.dot` for a shrunk
/// disagreement and returns both paths. `dir` is created if missing.
pub fn write_witness(
    dir: &Path,
    index: usize,
    d: &ShrunkDisagreement,
) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let stem = format!("disagreement-{index:02}-{}", d.original.model.name().to_lowercase());
    let litmus = dir.join(format!("{stem}.litmus"));
    let dot = dir.join(format!("{stem}.dot"));
    std::fs::write(&litmus, render_witness(d))?;
    std::fs::write(&dot, d.shrunk.c.to_dot(&stem))?;
    Ok((litmus, dot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{Disagreement, Source};
    use crate::shrink::Shrunk;
    use ccmm_core::witness::figure4_prefix;

    fn fake_disagreement() -> ShrunkDisagreement {
        let w = figure4_prefix();
        ShrunkDisagreement {
            original: Disagreement {
                model: Model::Lc,
                source: Source::Exhaustive,
                c: w.computation.clone(),
                phi: w.phi.clone(),
                fast: true,
                oracle: false,
            },
            shrunk: Shrunk { c: w.computation, phi: w.phi, steps: 0 },
        }
    }

    #[test]
    fn witness_roundtrips_through_the_parsers() {
        let text = render_witness(&fake_disagreement());
        let entry = crate::corpus::parse_entry("w", &text).expect("witness parses as corpus");
        assert_eq!(entry.computation.node_count(), 4);
        // Figure 4's prefix: in every NN-family model, out of SC and LC.
        let get = |m: Model| entry.expect.iter().find(|(e, _)| *e == m).unwrap().1;
        assert!(!get(Model::Sc) && !get(Model::Lc));
        assert!(get(Model::Nn) && get(Model::Ww));
    }

    #[test]
    fn write_witness_emits_both_files() {
        let dir = std::env::temp_dir().join("ccmm-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let (litmus, dot) = write_witness(&dir, 3, &fake_disagreement()).expect("write");
        assert!(litmus.ends_with("disagreement-03-lc.litmus") && litmus.exists());
        let dot_text = std::fs::read_to_string(&dot).expect("dot readable");
        assert!(dot_text.contains("digraph"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
