//! The differential harness: fast checkers vs definitional oracles.
//!
//! [`run`] compares each configured [`Model`]'s production checker against
//! its [`Oracle`] twin over four pair sources — exhaustive (bounded
//! universe, via the parallel sweep engine), random (seeded), harvested
//! (BACKER executions of Cilk workloads), and lock-augmented (existential
//! membership over critical-section serializations). Every disagreement
//! is shrunk to a 1-minimal witness before it is reported.
//!
//! [`run_with`] injects the fast checker as a closure; [`self_test`] uses
//! this to seed a deliberate mutation ([`mutated_fast`]) and prove the
//! harness catches and shrinks it.

use crate::shrink::{shrink, Shrunk};
use crate::sources::{random_computation, random_observer};
use ccmm_core::enumerate::for_each_observer;
use ccmm_core::locks::{CriticalSection, Lock, LockedComputation};
use ccmm_core::sweep::supervisor::{sweep_supervised, Merge, Supervisor};
use ccmm_core::sweep::SweepConfig;
use ccmm_core::telemetry::{self, Counter};
use ccmm_core::universe::Universe;
use ccmm_core::{Computation, Location, MemoryModel, Model, ObserverFunction, Op, Oracle};
use ccmm_dag::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which source produced a disagreeing pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The bounded exhaustive sweep.
    Exhaustive,
    /// The seeded random generator.
    Random,
    /// A BACKER execution of a Cilk workload.
    Harvested,
    /// A lock-augmented membership check (the pair is the serialization
    /// on which the fast checker and the oracle split).
    Lock,
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Source::Exhaustive => "exhaustive",
            Source::Random => "random",
            Source::Harvested => "harvested",
            Source::Lock => "lock",
        })
    }
}

/// One fast-vs-oracle split on a concrete pair.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// The model whose checkers split.
    pub model: Model,
    /// Where the pair came from.
    pub source: Source,
    /// The computation.
    pub c: Computation,
    /// The observer function.
    pub phi: ObserverFunction,
    /// The fast checker's answer.
    pub fast: bool,
    /// The oracle's answer.
    pub oracle: bool,
}

/// A disagreement together with its shrunk 1-minimal witness.
#[derive(Clone, Debug)]
pub struct ShrunkDisagreement {
    /// The disagreement as found.
    pub original: Disagreement,
    /// The minimised pair (the split still holds on it).
    pub shrunk: Shrunk,
}

/// Harness configuration. [`Default`] is the CI smoke tier: exhaustive to
/// 4 nodes × 1 location, 200 random cases, harvesting and locks on.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Models under test (default: the six concrete checkers).
    pub models: Vec<Model>,
    /// Exhaustive sweep bound: all computations up to this many nodes.
    pub max_nodes: usize,
    /// Locations in the exhaustive universe.
    pub num_locations: usize,
    /// Number of random `(C, Φ)` cases.
    pub random_cases: usize,
    /// Node cap for random computations (keep ≤ 7: the oracles enumerate
    /// topological sorts).
    pub max_random_nodes: usize,
    /// Locations for random computations.
    pub random_locations: usize,
    /// RNG seed — a run is reproducible from its config.
    pub seed: u64,
    /// Harvest observers from BACKER executions of Cilk workloads.
    pub harvest: bool,
    /// Random observers per locked computation (0 disables the lock
    /// source).
    pub lock_cases: usize,
    /// Thread configuration for the exhaustive sweep.
    pub sweep: SweepConfig,
    /// Stop collecting (but keep counting) after this many disagreements.
    pub max_disagreements: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            models: vec![Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww],
            max_nodes: 4,
            num_locations: 1,
            random_cases: 200,
            max_random_nodes: 7,
            random_locations: 2,
            seed: 0xC0FFEE,
            harvest: true,
            lock_cases: 24,
            sweep: SweepConfig::from_env(),
            max_disagreements: 8,
        }
    }
}

/// What a harness run saw.
#[derive(Clone, Debug)]
pub struct Report {
    /// `(C, Φ)` pairs from the exhaustive sweep.
    pub exhaustive_pairs: u64,
    /// Pairs from the random generator.
    pub random_pairs: u64,
    /// Pairs harvested from BACKER executions.
    pub harvested_pairs: u64,
    /// Lock-augmented membership checks.
    pub lock_pairs: u64,
    /// Individual fast-vs-oracle comparisons (pairs × models).
    pub checks: u64,
    /// Shrunk disagreements, in deterministic discovery order.
    pub disagreements: Vec<ShrunkDisagreement>,
    /// True when more disagreements existed than were collected.
    pub truncated: bool,
    /// Cases quarantined because a checker panicked (sweep tasks from the
    /// exhaustive source, individual pairs elsewhere). The harness keeps
    /// running; the skipped coverage is reported here.
    pub quarantined: u64,
}

impl Report {
    /// True iff every fast checker agreed with its oracle everywhere —
    /// and actually ran everywhere (no case was quarantined by a panic).
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty() && !self.truncated && self.quarantined == 0
    }

    /// Total pairs across all sources.
    pub fn total_pairs(&self) -> u64 {
        self.exhaustive_pairs + self.random_pairs + self.harvested_pairs + self.lock_pairs
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance: {} pairs ({} exhaustive, {} random, {} harvested, {} lock), {} checks",
            self.total_pairs(),
            self.exhaustive_pairs,
            self.random_pairs,
            self.harvested_pairs,
            self.lock_pairs,
            self.checks,
        )?;
        if self.quarantined > 0 {
            writeln!(f, "{} case(s) quarantined: a checker panicked", self.quarantined)?;
        }
        if self.ok() {
            write!(f, "all fast checkers agree with their oracles")
        } else if self.disagreements.is_empty() && !self.truncated {
            write!(f, "no disagreements, but quarantined coverage is missing")
        } else {
            write!(
                f,
                "{} disagreement(s){}",
                self.disagreements.len(),
                if self.truncated { " (truncated)" } else { "" }
            )
        }
    }
}

/// Adapts a closure to [`MemoryModel`] so lock-aware membership
/// ([`LockedComputation::contains_under`]) can run the injected fast
/// checker.
struct FnModel<'a, F> {
    name: &'a str,
    f: F,
}

impl<F> MemoryModel for FnModel<'_, F>
where
    F: Fn(&Computation, &ObserverFunction) -> bool,
{
    fn name(&self) -> &str {
        self.name
    }
    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        (self.f)(c, phi)
    }
}

/// Per-task cap on collected disagreements before the global merge —
/// generous relative to `max_disagreements` so truncation cannot hide
/// the globally-first witnesses.
const WORKER_CAP: usize = 64;

/// Exhaustive-source sweep state: counters plus task-tagged finds. The
/// tag sort after the merge reproduces the serial scan's order, so the
/// extend-order dependence inside `merge` washes out.
struct ExhState {
    pairs: u64,
    checks: u64,
    finds: Vec<(usize, Disagreement)>,
}

impl Merge for ExhState {
    fn merge(&mut self, other: Self) {
        self.pairs += other.pairs;
        self.checks += other.checks;
        self.finds.extend(other.finds);
    }
}

/// Runs one non-exhaustive case under `catch_unwind`: a panicking checker
/// quarantines the case (counted, skipped) instead of aborting the
/// harness.
fn guarded_case<R>(quarantined: &mut u64, case: impl FnOnce() -> R) -> Option<R> {
    match catch_unwind(AssertUnwindSafe(case)) {
        Ok(r) => Some(r),
        Err(_) => {
            *quarantined += 1;
            None
        }
    }
}

/// Runs the harness with the production checkers (`Model::contains`).
pub fn run(cfg: &HarnessConfig) -> Report {
    run_with(cfg, |m, c, phi| m.contains(c, phi))
}

/// Runs the harness with an injected fast checker. The closure is called
/// as `fast(model, c, phi)` and its answer is compared against
/// `Oracle::for_model(model)`; everything else (sources, shrinking,
/// reporting) is identical to [`run`].
pub fn run_with<F>(cfg: &HarnessConfig, fast: F) -> Report
where
    F: Fn(Model, &Computation, &ObserverFunction) -> bool + Sync,
{
    let oracles: Vec<(Model, Oracle)> =
        cfg.models.iter().map(|&m| (m, Oracle::for_model(m))).collect();
    let mut checks: u64 = 0;
    let mut raw: Vec<Disagreement> = Vec::new();
    let mut truncated = false;
    let mut quarantined: u64 = 0;

    // Source 1: exhaustive sweep, under the supervised engine — a
    // panicking checker quarantines its poset task (retried once) instead
    // of aborting the harness. Finds are tagged with the task index; the
    // sort after the merge reproduces the serial scan's order.
    let exh_span = telemetry::span("conformance/exhaustive");
    let out = sweep_supervised(
        &Universe::new(cfg.max_nodes, cfg.num_locations),
        &cfg.sweep,
        &Supervisor::none(),
        || ExhState { pairs: 0, checks: 0, finds: Vec::new() },
        || (),
        |acc, (), task_idx, c, _| {
            let _ = for_each_observer(c, |phi| {
                acc.pairs += 1;
                for (m, oracle) in &oracles {
                    acc.checks += 1;
                    telemetry::count(Counter::ConformanceChecks, 1);
                    let f = fast(*m, c, phi);
                    let o = oracle.contains(c, phi);
                    if f != o && acc.finds.len() < WORKER_CAP {
                        acc.finds.push((
                            task_idx,
                            Disagreement {
                                model: *m,
                                source: Source::Exhaustive,
                                c: c.clone(),
                                phi: phi.clone(),
                                fast: f,
                                oracle: o,
                            },
                        ));
                    }
                }
                ControlFlow::Continue(())
            });
        },
    );
    quarantined += out.quarantined.len() as u64;
    let exhaustive_pairs = out.value.pairs;
    checks += out.value.checks;
    let mut tagged = out.value.finds;
    tagged.sort_by_key(|(idx, _)| *idx);
    for (_, d) in tagged {
        push_capped(&mut raw, d, cfg.max_disagreements, &mut truncated);
    }
    drop(exh_span);

    // Source 2: seeded random pairs (serial — reproducibility over speed).
    let random_span = telemetry::span("conformance/random");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut random_pairs = 0;
    for _ in 0..cfg.random_cases {
        let c = random_computation(&mut rng, cfg.max_random_nodes, cfg.random_locations);
        let phi = random_observer(&mut rng, &c);
        random_pairs += 1;
        let case = guarded_case(&mut quarantined, || {
            let mut case_checks = 0u64;
            let mut finds = Vec::new();
            for (m, oracle) in &oracles {
                case_checks += 1;
                telemetry::count(Counter::ConformanceChecks, 1);
                let f = fast(*m, &c, &phi);
                let o = oracle.contains(&c, &phi);
                if f != o {
                    finds.push(Disagreement {
                        model: *m,
                        source: Source::Random,
                        c: c.clone(),
                        phi: phi.clone(),
                        fast: f,
                        oracle: o,
                    });
                }
            }
            (case_checks, finds)
        });
        if let Some((case_checks, finds)) = case {
            checks += case_checks;
            for d in finds {
                push_capped(&mut raw, d, cfg.max_disagreements, &mut truncated);
            }
        }
    }

    drop(random_span);

    // Source 3: observers harvested from BACKER executions of Cilk
    // workloads. Workloads are capped at ~10 nodes so the factorial
    // oracles stay affordable.
    let harvest_span = telemetry::span("conformance/harvested");
    let mut harvested_pairs = 0;
    if cfg.harvest {
        for (_, c) in ccmm_cilk::conformance_workloads() {
            for phi in ccmm_backer::harvest::harvest_observers(&c, 6, 2, 2, cfg.seed) {
                harvested_pairs += 1;
                let case = guarded_case(&mut quarantined, || {
                    let mut case_checks = 0u64;
                    let mut finds = Vec::new();
                    for (m, oracle) in &oracles {
                        case_checks += 1;
                        telemetry::count(Counter::ConformanceChecks, 1);
                        let f = fast(*m, &c, &phi);
                        let o = oracle.contains(&c, &phi);
                        if f != o {
                            finds.push(Disagreement {
                                model: *m,
                                source: Source::Harvested,
                                c: c.clone(),
                                phi: phi.clone(),
                                fast: f,
                                oracle: o,
                            });
                        }
                    }
                    (case_checks, finds)
                });
                if let Some((case_checks, finds)) = case {
                    checks += case_checks;
                    for d in finds {
                        push_capped(&mut raw, d, cfg.max_disagreements, &mut truncated);
                    }
                }
            }
        }
    }

    drop(harvest_span);

    // Source 4: lock-augmented membership. Both sides take the same
    // existential over serializations; a split implies a serialization on
    // which the plain checkers split, which becomes the recorded pair.
    let lock_span = telemetry::span("conformance/lock");
    let mut lock_pairs = 0;
    if cfg.lock_cases > 0 {
        for lk in lock_workloads() {
            let serializations = lk.serializations();
            for _ in 0..cfg.lock_cases {
                let phi = random_observer(&mut rng, lk.computation());
                lock_pairs += 1;
                let case = guarded_case(&mut quarantined, || {
                    let mut case_checks = 0u64;
                    let mut finds = Vec::new();
                    for (m, oracle) in &oracles {
                        case_checks += 1;
                        telemetry::count(Counter::ConformanceChecks, 1);
                        let m = *m;
                        let f_model = FnModel {
                            name: "fast-under-test",
                            f: |c: &Computation, p: &ObserverFunction| fast(m, c, p),
                        };
                        let f = lk.contains_under(&f_model, &phi);
                        let o = lk.contains_under(oracle, &phi);
                        if f != o {
                            // Find the serialization the sides split on
                            // (one must exist: the accepted witness of the
                            // `true` side is rejected wholesale by the
                            // `false` side).
                            let split = serializations
                                .iter()
                                .find(|s| fast(m, s, &phi) != oracle.contains(s, &phi))
                                .expect("a lock-level split implies a serialization-level split");
                            finds.push(Disagreement {
                                model: m,
                                source: Source::Lock,
                                c: split.clone(),
                                phi: phi.clone(),
                                fast: fast(m, split, &phi),
                                oracle: oracle.contains(split, &phi),
                            });
                        }
                    }
                    (case_checks, finds)
                });
                if let Some((case_checks, finds)) = case {
                    checks += case_checks;
                    for d in finds {
                        push_capped(&mut raw, d, cfg.max_disagreements, &mut truncated);
                    }
                }
            }
        }
    }

    drop(lock_span);

    // Shrink every collected disagreement; the split predicate re-runs
    // both sides on each candidate.
    let _shrink_span = telemetry::span("conformance/shrink");
    let disagreements = raw
        .into_iter()
        .map(|d| {
            let m = d.model;
            let oracle = Oracle::for_model(m);
            let shrunk = shrink(&d.c, &d.phi, |c, phi| fast(m, c, phi) != oracle.contains(c, phi));
            ShrunkDisagreement { original: d, shrunk }
        })
        .collect();

    Report {
        exhaustive_pairs,
        random_pairs,
        harvested_pairs,
        lock_pairs,
        checks,
        disagreements,
        truncated,
        quarantined,
    }
}

fn push_capped(raw: &mut Vec<Disagreement>, d: Disagreement, cap: usize, truncated: &mut bool) {
    if raw.len() < cap {
        raw.push(d);
    } else {
        *truncated = true;
    }
}

/// Small locked computations for the lock source: parallel critical
/// sections whose membership genuinely depends on the serialization
/// chosen.
fn lock_workloads() -> Vec<LockedComputation> {
    let l0 = Location::new(0);
    let lk = Lock(0);
    // Two parallel lock-protected write→read sections on one location,
    // plus a final read joining both.
    let c1 = Computation::from_edges(
        5,
        &[(0, 1), (2, 3), (1, 4), (3, 4)],
        vec![Op::Write(l0), Op::Read(l0), Op::Write(l0), Op::Read(l0), Op::Read(l0)],
    );
    let s1 = vec![
        CriticalSection { lock: lk, acquire: NodeId::new(0), release: NodeId::new(1) },
        CriticalSection { lock: lk, acquire: NodeId::new(2), release: NodeId::new(3) },
    ];
    // Three parallel single-node write sections racing on one location.
    let c2 = Computation::from_edges(
        4,
        &[(0, 3), (1, 3), (2, 3)],
        vec![Op::Write(l0), Op::Write(l0), Op::Write(l0), Op::Read(l0)],
    );
    let s2 = (0..3)
        .map(|i| CriticalSection { lock: lk, acquire: NodeId::new(i), release: NodeId::new(i) })
        .collect();
    vec![
        LockedComputation::new(c1, s1).expect("valid sections"),
        LockedComputation::new(c2, s2).expect("valid sections"),
    ]
}

/// The deliberately buggy fast checker for [`self_test`]: LC answered as
/// NN on computations of ≥ 4 nodes — i.e. coherence (the per-location
/// total order that separates LC from NN, Theorem 22) is forgotten
/// exactly where the smallest separating computation first exists.
pub fn mutated_fast(m: Model, c: &Computation, phi: &ObserverFunction) -> bool {
    if m == Model::Lc && c.node_count() >= 4 {
        Model::Nn.contains(c, phi)
    } else {
        m.contains(c, phi)
    }
}

/// Harness self-test: run with [`mutated_fast`] and check the pipeline
/// (a) catches the seeded LC bug and (b) shrinks some witness of it to
/// ≤ 6 nodes. The sweep bound is clamped to ≥ 4 nodes so the minimal
/// witness of the bug (the Figure-4 pattern) is guaranteed in scope —
/// a self-test that could miss its own seeded bug proves nothing.
/// Returns the faulty run's report on success.
pub fn self_test(cfg: &HarnessConfig) -> Result<Report, String> {
    let mut cfg = cfg.clone();
    cfg.max_nodes = cfg.max_nodes.max(4);
    cfg.num_locations = cfg.num_locations.max(1);
    if !cfg.models.contains(&Model::Lc) {
        cfg.models.push(Model::Lc);
    }
    let report = run_with(&cfg, mutated_fast);
    if report.ok() {
        return Err("seeded LC mutation was NOT caught".into());
    }
    let lc = report
        .disagreements
        .iter()
        .filter(|d| d.original.model == Model::Lc)
        .min_by_key(|d| d.shrunk.c.node_count());
    match lc {
        None => Err("disagreements found, but none against the mutated LC checker".into()),
        Some(d) if d.shrunk.c.node_count() <= 6 => Ok(report),
        Some(d) => {
            Err(format!("LC witness shrank only to {} nodes (need ≤ 6)", d.shrunk.c.node_count()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> HarnessConfig {
        HarnessConfig {
            max_nodes: 3,
            random_cases: 40,
            max_random_nodes: 5,
            harvest: false,
            lock_cases: 4,
            sweep: SweepConfig::serial(),
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn production_checkers_pass_a_quick_run() {
        let report = run(&quick_cfg());
        assert!(report.ok(), "unexpected disagreements:\n{report}");
        assert!(report.exhaustive_pairs > 0 && report.random_pairs > 0);
        assert!(report.lock_pairs > 0);
    }

    #[test]
    fn self_test_catches_the_seeded_mutation() {
        // Bound 4 guarantees the Figure-4 NN∖LC pattern is swept, so the
        // LC-answered-as-NN mutation *must* surface.
        let cfg = HarnessConfig {
            max_nodes: 4,
            random_cases: 0,
            harvest: false,
            lock_cases: 0,
            sweep: SweepConfig::serial(),
            ..HarnessConfig::default()
        };
        let report = self_test(&cfg).expect("mutation must be caught and shrink small");
        assert!(!report.ok());
        let d = report
            .disagreements
            .iter()
            .find(|d| d.original.model == Model::Lc)
            .expect("an LC disagreement");
        // The minimal LC∕NN separator is the 4-node Figure-4 pattern.
        assert!(d.shrunk.c.node_count() >= 4, "no smaller separator exists");
    }

    #[test]
    fn lock_source_splits_are_reported_as_serializations() {
        // Inject a checker that is wrong only on serialized (≥6-edge)
        // computations of the first lock workload; the recorded pair must
        // be a serialization, not the base computation.
        let cfg = HarnessConfig {
            max_nodes: 0,
            random_cases: 0,
            harvest: false,
            lock_cases: 8,
            sweep: SweepConfig::serial(),
            ..HarnessConfig::default()
        };
        let report = run_with(&cfg, |m, c, phi| {
            if m == Model::Sc && c.node_count() == 5 && c.dag().edges().count() >= 5 {
                false // reject every serialization of workload 1
            } else {
                m.contains(c, phi)
            }
        });
        let lock_split = report.disagreements.iter().find(|d| d.original.source == Source::Lock);
        if let Some(d) = lock_split {
            assert!(
                d.original.c.dag().edges().count() >= 5,
                "recorded pair must be a serialization (has the extra lock edge)"
            );
        }
        // The SC-rejecting mutation must surface somewhere.
        assert!(!report.ok(), "mutation rejecting serializations must be caught");
    }

    #[test]
    fn panicking_checker_is_quarantined_not_fatal() {
        // A checker that panics on every 3-node computation: the harness
        // must quarantine the affected cases (sweep tasks and random
        // pairs), keep running, and fail the run *as incomplete* rather
        // than aborting or reporting a clean pass.
        let cfg = HarnessConfig {
            max_nodes: 3,
            random_cases: 30,
            max_random_nodes: 4,
            harvest: false,
            lock_cases: 0,
            sweep: SweepConfig::with_threads(2),
            ..HarnessConfig::default()
        };
        let report = run_with(&cfg, |m, c, phi| {
            if c.node_count() == 3 {
                panic!("injected checker panic on a 3-node computation");
            }
            m.contains(c, phi)
        });
        assert!(report.quarantined > 0, "3-node cases must be quarantined");
        assert!(!report.ok(), "quarantined coverage must fail the run");
        assert!(report.disagreements.is_empty(), "the checker never *disagrees*");
        // The surviving (≤ 2-node) sweep tasks were still checked.
        assert!(report.exhaustive_pairs > 0);
        assert!(report.to_string().contains("quarantined"));
    }

    #[test]
    fn report_display_is_informative() {
        let report = run(&HarnessConfig {
            max_nodes: 2,
            random_cases: 5,
            harvest: false,
            lock_cases: 0,
            sweep: SweepConfig::serial(),
            ..HarnessConfig::default()
        });
        let s = report.to_string();
        assert!(s.contains("pairs") && s.contains("agree"), "unexpected report: {s}");
    }
}
