//! Series-parallel dag construction.
//!
//! Fork/join programs (e.g. Cilk, the paper's motivating language) unfold
//! into *series-parallel* computations: single-source, single-sink dags
//! closed under series and parallel composition. [`SpExpr`] is the
//! composition tree; [`SpExpr::build`] lowers it to a [`Dag`] plus the list
//! of leaf nodes in expression order, so callers can attach payloads
//! (memory operations) to leaves.

use crate::graph::{Dag, NodeId};

/// A series-parallel expression tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpExpr {
    /// A single leaf node.
    Leaf,
    /// Sequential composition: left's sink precedes right's source.
    Series(Box<SpExpr>, Box<SpExpr>),
    /// Parallel composition: a fresh fork node precedes both branches and a
    /// fresh join node succeeds both.
    Parallel(Box<SpExpr>, Box<SpExpr>),
}

impl SpExpr {
    /// A leaf.
    pub fn leaf() -> Self {
        SpExpr::Leaf
    }

    /// `self ; other` — series composition.
    pub fn then(self, other: SpExpr) -> Self {
        SpExpr::Series(Box::new(self), Box::new(other))
    }

    /// `self ∥ other` — parallel composition with fresh fork/join nodes.
    pub fn par(self, other: SpExpr) -> Self {
        SpExpr::Parallel(Box::new(self), Box::new(other))
    }

    /// Series composition of an iterator of expressions.
    ///
    /// Panics on an empty iterator.
    pub fn seq<I: IntoIterator<Item = SpExpr>>(items: I) -> Self {
        let mut it = items.into_iter();
        let first = it.next().expect("seq of zero expressions");
        it.fold(first, SpExpr::then)
    }

    /// Balanced parallel composition of an iterator of expressions.
    ///
    /// Panics on an empty iterator.
    pub fn par_all<I: IntoIterator<Item = SpExpr>>(items: I) -> Self {
        let mut items: Vec<SpExpr> = items.into_iter().collect();
        assert!(!items.is_empty(), "par_all of zero expressions");
        while items.len() > 1 {
            let mut next = Vec::with_capacity(items.len().div_ceil(2));
            let mut it = items.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(a.par(b)),
                    None => next.push(a),
                }
            }
            items = next;
        }
        items.pop().expect("nonempty by construction")
    }

    /// Number of leaves in the expression.
    pub fn leaf_count(&self) -> usize {
        match self {
            SpExpr::Leaf => 1,
            SpExpr::Series(a, b) | SpExpr::Parallel(a, b) => a.leaf_count() + b.leaf_count(),
        }
    }

    /// Total node count after lowering (leaves plus fork/join pairs).
    pub fn node_count(&self) -> usize {
        match self {
            SpExpr::Leaf => 1,
            SpExpr::Series(a, b) => a.node_count() + b.node_count(),
            SpExpr::Parallel(a, b) => a.node_count() + b.node_count() + 2,
        }
    }

    /// Lowers the expression to a dag.
    ///
    /// Returns `(dag, leaves, source, sink)` where `leaves` lists the dag
    /// nodes of the expression's leaves in left-to-right expression order.
    /// Fork and join nodes are fresh non-leaf nodes.
    pub fn build(&self) -> SpDag {
        let mut edges = Vec::new();
        let mut leaves = Vec::new();
        let mut next = 0usize;
        let (source, sink) = lower(self, &mut next, &mut edges, &mut leaves);
        let dag = Dag::from_edges(next, &edges).expect("series-parallel dags are acyclic");
        SpDag { dag, leaves, source, sink }
    }
}

/// An O(1) strict-precedence oracle for series-parallel dags, backed by a
/// two-linear-extension realizer instead of an O(n²)-bit transitive
/// closure.
///
/// Series-parallel partial orders have order dimension ≤ 2, so two linear
/// extensions suffice to decide every precedence query: `u ≺ v` iff both
/// extensions place `u` before `v`. The first extension is the node
/// numbering itself (fork/join builders emit nodes in left-to-right
/// depth-first execution order, the "English" order); the caller supplies
/// the second ("Hebrew": continuation before child, later children first,
/// see `ccmm-cilk`'s builder). Storage is one `u32` per node, which is
/// what lets million-node traces answer precedence queries at all —
/// closure bitsets would need O(n²) bits.
///
/// Construction validates that both orders are linear extensions of the
/// dag, which makes `precedes` *sound* (`precedes(u, v)` ⟹ a path exists
/// or the pair is incomparable-but-agreed). *Completeness* — every
/// incomparable pair disagrees between the two orders, making the oracle
/// exact — holds when the pair is a realizer, which the fork/join builder
/// guarantees by construction and its tests pin differentially against
/// [`crate::Reachability`].
#[derive(Clone, Debug)]
pub struct SpOrder {
    /// `hebrew[u]` = rank of node `u` in the second linear extension.
    hebrew: Vec<u32>,
}

impl SpOrder {
    /// Wraps a Hebrew rank assignment, validating that the identity order
    /// and `hebrew` are both linear extensions of `dag`.
    pub fn new(dag: &Dag, hebrew: Vec<u32>) -> Result<SpOrder, String> {
        let n = dag.node_count();
        if hebrew.len() != n {
            return Err(format!("hebrew rank has {} entries for {} nodes", hebrew.len(), n));
        }
        let mut seen = vec![false; n];
        for &r in &hebrew {
            let r = r as usize;
            if r >= n || seen[r] {
                return Err(format!("hebrew rank is not a permutation of 0..{n}"));
            }
            seen[r] = true;
        }
        for (u, v) in dag.edges() {
            if u.index() >= v.index() {
                return Err(format!("edge {u} → {v} violates the creation (identity) order"));
            }
            if hebrew[u.index()] >= hebrew[v.index()] {
                return Err(format!("edge {u} → {v} violates the hebrew order"));
            }
        }
        Ok(SpOrder { hebrew })
    }

    /// Number of nodes covered by the oracle.
    pub fn node_count(&self) -> usize {
        self.hebrew.len()
    }

    /// Strict precedence `u ≺ v`: both linear extensions agree.
    #[inline]
    pub fn precedes(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < v.index() && self.hebrew[u.index()] < self.hebrew[v.index()]
    }

    /// Whether `u` and `v` are incomparable (the extensions disagree).
    #[inline]
    pub fn concurrent(&self, u: NodeId, v: NodeId) -> bool {
        u != v && !self.precedes(u, v) && !self.precedes(v, u)
    }
}

/// The result of lowering an [`SpExpr`].
#[derive(Clone, Debug)]
pub struct SpDag {
    /// The lowered dag.
    pub dag: Dag,
    /// Leaf nodes in expression order.
    pub leaves: Vec<NodeId>,
    /// The unique source.
    pub source: NodeId,
    /// The unique sink.
    pub sink: NodeId,
}

fn lower(
    e: &SpExpr,
    next: &mut usize,
    edges: &mut Vec<(usize, usize)>,
    leaves: &mut Vec<NodeId>,
) -> (NodeId, NodeId) {
    match e {
        SpExpr::Leaf => {
            let u = NodeId::new(*next);
            *next += 1;
            leaves.push(u);
            (u, u)
        }
        SpExpr::Series(a, b) => {
            let (a_src, a_snk) = lower(a, next, edges, leaves);
            let (b_src, b_snk) = lower(b, next, edges, leaves);
            edges.push((a_snk.index(), b_src.index()));
            (a_src, b_snk)
        }
        SpExpr::Parallel(a, b) => {
            let fork = NodeId::new(*next);
            *next += 1;
            let (a_src, a_snk) = lower(a, next, edges, leaves);
            let (b_src, b_snk) = lower(b, next, edges, leaves);
            let join = NodeId::new(*next);
            *next += 1;
            edges.push((fork.index(), a_src.index()));
            edges.push((fork.index(), b_src.index()));
            edges.push((a_snk.index(), join.index()));
            edges.push((b_snk.index(), join.index()));
            (fork, join)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::Reachability;

    #[test]
    fn single_leaf() {
        let sp = SpExpr::leaf().build();
        assert_eq!(sp.dag.node_count(), 1);
        assert_eq!(sp.leaves.len(), 1);
        assert_eq!(sp.source, sp.sink);
    }

    #[test]
    fn series_of_three() {
        let e = SpExpr::seq([SpExpr::leaf(), SpExpr::leaf(), SpExpr::leaf()]);
        let sp = e.build();
        assert_eq!(sp.dag.node_count(), 3);
        assert_eq!(sp.dag.edge_count(), 2);
        let r = Reachability::new(&sp.dag);
        assert!(r.reaches(sp.leaves[0], sp.leaves[2]));
    }

    #[test]
    fn parallel_pair_has_fork_and_join() {
        let e = SpExpr::leaf().par(SpExpr::leaf());
        let sp = e.build();
        assert_eq!(sp.dag.node_count(), 4);
        assert_eq!(sp.leaves.len(), 2);
        let r = Reachability::new(&sp.dag);
        assert!(r.incomparable(sp.leaves[0], sp.leaves[1]));
        assert!(r.reaches(sp.source, sp.leaves[0]));
        assert!(r.reaches(sp.leaves[1], sp.sink));
    }

    #[test]
    fn node_count_agrees_with_build() {
        let e = SpExpr::seq([
            SpExpr::leaf(),
            SpExpr::leaf().par(SpExpr::leaf().then(SpExpr::leaf())),
            SpExpr::leaf(),
        ]);
        let sp = e.build();
        assert_eq!(sp.dag.node_count(), e.node_count());
        assert_eq!(sp.leaves.len(), e.leaf_count());
    }

    #[test]
    fn single_source_single_sink() {
        let e = SpExpr::par_all((0..5).map(|_| SpExpr::leaf()));
        let sp = e.build();
        assert_eq!(sp.dag.roots(), vec![sp.source]);
        assert_eq!(sp.dag.leaves(), vec![sp.sink]);
    }

    #[test]
    fn par_all_balances() {
        let e = SpExpr::par_all((0..4).map(|_| SpExpr::leaf()));
        // 4 leaves, 3 parallel compositions => 4 + 6 = 10 nodes.
        assert_eq!(e.node_count(), 10);
        let sp = e.build();
        let r = Reachability::new(&sp.dag);
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(r.incomparable(sp.leaves[i], sp.leaves[j]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "seq of zero")]
    fn seq_empty_panics() {
        SpExpr::seq([]);
    }

    #[test]
    fn sp_order_decides_the_fork_join_diamond() {
        // 0 forks to {1, 2}, joining at 3. Hebrew runs the later branch
        // first: 0, 2, 1, 3.
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let o = SpOrder::new(&dag, vec![0, 2, 1, 3]).unwrap();
        let r = Reachability::new(&dag);
        for u in 0..4 {
            for v in 0..4 {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                assert_eq!(o.precedes(u, v), r.reaches(u, v), "{u} ≺ {v}");
                if u != v {
                    assert_eq!(o.concurrent(u, v), r.incomparable(u, v));
                }
            }
        }
    }

    #[test]
    fn sp_order_rejects_non_extensions() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        // Wrong length.
        assert!(SpOrder::new(&dag, vec![0, 1]).is_err());
        // Not a permutation.
        assert!(SpOrder::new(&dag, vec![0, 0, 1]).is_err());
        // Violates an edge.
        assert!(SpOrder::new(&dag, vec![1, 0, 2]).is_err());
        // The chain itself is fine.
        assert!(SpOrder::new(&dag, vec![0, 1, 2]).is_ok());
    }

    #[test]
    fn leaves_in_expression_order() {
        let e = SpExpr::leaf().then(SpExpr::leaf().par(SpExpr::leaf()));
        let sp = e.build();
        assert_eq!(sp.leaves.len(), 3);
        // First leaf is the series head, which is also the source.
        assert_eq!(sp.leaves[0], sp.source);
    }
}
