//! Series-parallel dag construction.
//!
//! Fork/join programs (e.g. Cilk, the paper's motivating language) unfold
//! into *series-parallel* computations: single-source, single-sink dags
//! closed under series and parallel composition. [`SpExpr`] is the
//! composition tree; [`SpExpr::build`] lowers it to a [`Dag`] plus the list
//! of leaf nodes in expression order, so callers can attach payloads
//! (memory operations) to leaves.

use crate::graph::{Dag, NodeId};

/// A series-parallel expression tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpExpr {
    /// A single leaf node.
    Leaf,
    /// Sequential composition: left's sink precedes right's source.
    Series(Box<SpExpr>, Box<SpExpr>),
    /// Parallel composition: a fresh fork node precedes both branches and a
    /// fresh join node succeeds both.
    Parallel(Box<SpExpr>, Box<SpExpr>),
}

impl SpExpr {
    /// A leaf.
    pub fn leaf() -> Self {
        SpExpr::Leaf
    }

    /// `self ; other` — series composition.
    pub fn then(self, other: SpExpr) -> Self {
        SpExpr::Series(Box::new(self), Box::new(other))
    }

    /// `self ∥ other` — parallel composition with fresh fork/join nodes.
    pub fn par(self, other: SpExpr) -> Self {
        SpExpr::Parallel(Box::new(self), Box::new(other))
    }

    /// Series composition of an iterator of expressions.
    ///
    /// Panics on an empty iterator.
    pub fn seq<I: IntoIterator<Item = SpExpr>>(items: I) -> Self {
        let mut it = items.into_iter();
        let first = it.next().expect("seq of zero expressions");
        it.fold(first, SpExpr::then)
    }

    /// Balanced parallel composition of an iterator of expressions.
    ///
    /// Panics on an empty iterator.
    pub fn par_all<I: IntoIterator<Item = SpExpr>>(items: I) -> Self {
        let mut items: Vec<SpExpr> = items.into_iter().collect();
        assert!(!items.is_empty(), "par_all of zero expressions");
        while items.len() > 1 {
            let mut next = Vec::with_capacity(items.len().div_ceil(2));
            let mut it = items.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(a.par(b)),
                    None => next.push(a),
                }
            }
            items = next;
        }
        items.pop().expect("nonempty by construction")
    }

    /// Number of leaves in the expression.
    pub fn leaf_count(&self) -> usize {
        match self {
            SpExpr::Leaf => 1,
            SpExpr::Series(a, b) | SpExpr::Parallel(a, b) => a.leaf_count() + b.leaf_count(),
        }
    }

    /// Total node count after lowering (leaves plus fork/join pairs).
    pub fn node_count(&self) -> usize {
        match self {
            SpExpr::Leaf => 1,
            SpExpr::Series(a, b) => a.node_count() + b.node_count(),
            SpExpr::Parallel(a, b) => a.node_count() + b.node_count() + 2,
        }
    }

    /// Lowers the expression to a dag.
    ///
    /// Returns `(dag, leaves, source, sink)` where `leaves` lists the dag
    /// nodes of the expression's leaves in left-to-right expression order.
    /// Fork and join nodes are fresh non-leaf nodes.
    pub fn build(&self) -> SpDag {
        let mut edges = Vec::new();
        let mut leaves = Vec::new();
        let mut next = 0usize;
        let (source, sink) = lower(self, &mut next, &mut edges, &mut leaves);
        let dag = Dag::from_edges(next, &edges).expect("series-parallel dags are acyclic");
        SpDag { dag, leaves, source, sink }
    }
}

/// The result of lowering an [`SpExpr`].
#[derive(Clone, Debug)]
pub struct SpDag {
    /// The lowered dag.
    pub dag: Dag,
    /// Leaf nodes in expression order.
    pub leaves: Vec<NodeId>,
    /// The unique source.
    pub source: NodeId,
    /// The unique sink.
    pub sink: NodeId,
}

fn lower(
    e: &SpExpr,
    next: &mut usize,
    edges: &mut Vec<(usize, usize)>,
    leaves: &mut Vec<NodeId>,
) -> (NodeId, NodeId) {
    match e {
        SpExpr::Leaf => {
            let u = NodeId::new(*next);
            *next += 1;
            leaves.push(u);
            (u, u)
        }
        SpExpr::Series(a, b) => {
            let (a_src, a_snk) = lower(a, next, edges, leaves);
            let (b_src, b_snk) = lower(b, next, edges, leaves);
            edges.push((a_snk.index(), b_src.index()));
            (a_src, b_snk)
        }
        SpExpr::Parallel(a, b) => {
            let fork = NodeId::new(*next);
            *next += 1;
            let (a_src, a_snk) = lower(a, next, edges, leaves);
            let (b_src, b_snk) = lower(b, next, edges, leaves);
            let join = NodeId::new(*next);
            *next += 1;
            edges.push((fork.index(), a_src.index()));
            edges.push((fork.index(), b_src.index()));
            edges.push((a_snk.index(), join.index()));
            edges.push((b_snk.index(), join.index()));
            (fork, join)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::Reachability;

    #[test]
    fn single_leaf() {
        let sp = SpExpr::leaf().build();
        assert_eq!(sp.dag.node_count(), 1);
        assert_eq!(sp.leaves.len(), 1);
        assert_eq!(sp.source, sp.sink);
    }

    #[test]
    fn series_of_three() {
        let e = SpExpr::seq([SpExpr::leaf(), SpExpr::leaf(), SpExpr::leaf()]);
        let sp = e.build();
        assert_eq!(sp.dag.node_count(), 3);
        assert_eq!(sp.dag.edge_count(), 2);
        let r = Reachability::new(&sp.dag);
        assert!(r.reaches(sp.leaves[0], sp.leaves[2]));
    }

    #[test]
    fn parallel_pair_has_fork_and_join() {
        let e = SpExpr::leaf().par(SpExpr::leaf());
        let sp = e.build();
        assert_eq!(sp.dag.node_count(), 4);
        assert_eq!(sp.leaves.len(), 2);
        let r = Reachability::new(&sp.dag);
        assert!(r.incomparable(sp.leaves[0], sp.leaves[1]));
        assert!(r.reaches(sp.source, sp.leaves[0]));
        assert!(r.reaches(sp.leaves[1], sp.sink));
    }

    #[test]
    fn node_count_agrees_with_build() {
        let e = SpExpr::seq([
            SpExpr::leaf(),
            SpExpr::leaf().par(SpExpr::leaf().then(SpExpr::leaf())),
            SpExpr::leaf(),
        ]);
        let sp = e.build();
        assert_eq!(sp.dag.node_count(), e.node_count());
        assert_eq!(sp.leaves.len(), e.leaf_count());
    }

    #[test]
    fn single_source_single_sink() {
        let e = SpExpr::par_all((0..5).map(|_| SpExpr::leaf()));
        let sp = e.build();
        assert_eq!(sp.dag.roots(), vec![sp.source]);
        assert_eq!(sp.dag.leaves(), vec![sp.sink]);
    }

    #[test]
    fn par_all_balances() {
        let e = SpExpr::par_all((0..4).map(|_| SpExpr::leaf()));
        // 4 leaves, 3 parallel compositions => 4 + 6 = 10 nodes.
        assert_eq!(e.node_count(), 10);
        let sp = e.build();
        let r = Reachability::new(&sp.dag);
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(r.incomparable(sp.leaves[i], sp.leaves[j]));
            }
        }
    }

    #[test]
    #[should_panic(expected = "seq of zero")]
    fn seq_empty_panics() {
        SpExpr::seq([]);
    }

    #[test]
    fn leaves_in_expression_order() {
        let e = SpExpr::leaf().then(SpExpr::leaf().par(SpExpr::leaf()));
        let sp = e.build();
        assert_eq!(sp.leaves.len(), 3);
        // First leaf is the series head, which is also the source.
        assert_eq!(sp.leaves[0], sp.source);
    }
}
