//! Exhaustive enumeration of naturally labelled posets.
//!
//! The paper's memory models depend on a computation only through its
//! precedence relation `≺` and op labelling, and membership is invariant
//! under dag isomorphism. Hence, to check a universally quantified claim
//! ("for all computations …") over all computations of at most `n` nodes,
//! it suffices to enumerate *naturally labelled* posets — partial orders on
//! `{0, …, n−1}` contained in the usual linear order — and then attach all
//! op labellings. This is OEIS A006455: 1, 1, 2, 7, 40, 357, 4824, … posets
//! for n = 0, 1, 2, …, exponentially smaller than all labelled dags.
//!
//! Each poset is produced as its transitive-closure [`Dag`] (every strict
//! precedence pair is an explicit edge), which makes downstream reachability
//! trivial.

use crate::graph::Dag;

/// Calls `f` with the transitive-closure dag of every naturally labelled
/// poset on `n` elements, exactly once each.
///
/// Node `k`'s ancestor set is chosen as a *downward-closed* subset of
/// `{0, …, k−1}`; downward closure makes the chosen set exactly the full
/// ancestor set, so the emitted edge set is transitively closed by
/// construction.
pub fn for_each_poset<F: FnMut(&Dag)>(n: usize, mut f: F) {
    assert!(n <= 16, "poset enumeration is exponential; n={n} is too large");
    // anc[k] as a bitmask over nodes 0..k.
    let mut anc: Vec<u32> = vec![0; n];
    fn recurse<F: FnMut(&Dag)>(k: usize, n: usize, anc: &mut Vec<u32>, f: &mut F) {
        if k == n {
            let mut edges = Vec::new();
            for (v, &mask) in anc.iter().enumerate() {
                for u in 0..v {
                    if mask & (1 << u) != 0 {
                        edges.push((u, v));
                    }
                }
            }
            let dag = Dag::from_edges(n, &edges).expect("forward edges cannot cycle");
            f(&dag);
            return;
        }
        // Enumerate all downward-closed subsets of {0..k}.
        for subset in 0..(1u32 << k) {
            let mut closed = true;
            for (u, &anc_u) in anc.iter().enumerate().take(k) {
                if subset & (1 << u) != 0 && anc_u & !subset != 0 {
                    closed = false;
                    break;
                }
            }
            if closed {
                anc[k] = subset;
                recurse(k + 1, n, anc, f);
            }
        }
    }
    recurse(0, n, &mut anc, &mut f);
}

/// Like [`for_each_poset`], but also passes the poset's *global index* in
/// enumeration order. The index is stable — it depends only on `n` — so
/// it can key deterministic parallel sweeps (ties in a parallel scan are
/// broken by "smallest index wins", which reproduces the serial scan).
pub fn for_each_poset_indexed<F: FnMut(usize, &Dag)>(n: usize, mut f: F) {
    let mut idx = 0;
    for_each_poset(n, |d| {
        f(idx, d);
        idx += 1;
    });
}

/// Sharded enumeration: calls `f` with exactly the posets whose global
/// index is congruent to `shard` modulo `num_shards` (still passing the
/// global index). The recursion is shared, but dags are only materialised
/// for this shard's indices; the shards partition the output of
/// [`for_each_poset_indexed`].
pub fn for_each_poset_shard<F: FnMut(usize, &Dag)>(
    n: usize,
    shard: usize,
    num_shards: usize,
    mut f: F,
) {
    assert!(num_shards > 0, "num_shards must be positive");
    assert!(shard < num_shards, "shard {shard} out of range 0..{num_shards}");
    let mut idx = 0;
    for_each_poset(n, |d| {
        if idx % num_shards == shard {
            f(idx, d);
        }
        idx += 1;
    });
}

/// Collects all naturally labelled posets on `n` elements as
/// transitive-closure dags.
pub fn enumerate_posets(n: usize) -> Vec<Dag> {
    let mut out = Vec::new();
    for_each_poset(n, |d| out.push(d.clone()));
    out
}

/// The number of naturally labelled posets on `n` elements (A006455).
pub fn count_posets(n: usize) -> usize {
    let mut c = 0;
    for_each_poset(n, |_| c += 1);
    c
}

/// The number of naturally labelled posets on `n` elements, by the same
/// downward-closed-ancestor-set recursion as [`for_each_poset`] but
/// without constructing any [`Dag`] — the counting backbone of closed-form
/// universe sizes (`count_posets_fast(n) · kⁿ` computations per size).
pub fn count_posets_fast(n: usize) -> u64 {
    assert!(n <= 16, "poset enumeration is exponential; n={n} is too large");
    fn recurse(k: usize, n: usize, anc: &mut [u32]) -> u64 {
        if k == n {
            return 1;
        }
        let mut total = 0;
        for subset in 0..(1u32 << k) {
            let mut closed = true;
            for (u, &anc_u) in anc.iter().enumerate().take(k) {
                if subset & (1 << u) != 0 && anc_u & !subset != 0 {
                    closed = false;
                    break;
                }
            }
            if closed {
                anc[k] = subset;
                total += recurse(k + 1, n, anc);
            }
        }
        total
    }
    let mut anc = vec![0u32; n];
    recurse(0, n, &mut anc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::Reachability;

    #[test]
    fn counts_match_oeis_a006455() {
        assert_eq!(count_posets(0), 1);
        assert_eq!(count_posets(1), 1);
        assert_eq!(count_posets(2), 2);
        assert_eq!(count_posets(3), 7);
        assert_eq!(count_posets(4), 40);
        assert_eq!(count_posets(5), 357);
    }

    #[test]
    fn outputs_are_transitively_closed() {
        for d in enumerate_posets(4) {
            let r = Reachability::new(&d);
            for u in d.nodes() {
                for v in r.descendants(u).iter() {
                    assert!(
                        d.has_edge(u, crate::graph::NodeId::new(v)),
                        "missing closure edge {u}->{v} in {d:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn outputs_are_distinct() {
        let posets = enumerate_posets(4);
        for (i, a) in posets.iter().enumerate() {
            for b in &posets[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn edges_are_forward() {
        for d in enumerate_posets(4) {
            for (u, v) in d.edges() {
                assert!(u.index() < v.index());
            }
        }
    }

    #[test]
    fn indexed_enumeration_matches_plain_order() {
        let plain = enumerate_posets(4);
        let mut indexed = Vec::new();
        for_each_poset_indexed(4, |i, d| indexed.push((i, d.clone())));
        assert_eq!(indexed.len(), plain.len());
        for (expect, (i, d)) in indexed.iter().enumerate() {
            assert_eq!(*i, expect);
            assert_eq!(*d, plain[expect]);
        }
    }

    #[test]
    fn shards_partition_the_enumeration() {
        let plain = enumerate_posets(4);
        let shards = 3;
        let mut seen: Vec<Option<Dag>> = vec![None; plain.len()];
        for shard in 0..shards {
            for_each_poset_shard(4, shard, shards, |i, d| {
                assert_eq!(i % shards, shard);
                assert!(seen[i].is_none(), "index {i} emitted twice");
                seen[i] = Some(d.clone());
            });
        }
        for (i, d) in seen.into_iter().enumerate() {
            assert_eq!(d.expect("every index emitted once"), plain[i]);
        }
    }

    #[test]
    fn fast_count_matches_oeis_and_enumeration() {
        // A006455: 1, 1, 2, 7, 40, 357, 4824.
        for (n, expect) in [1u64, 1, 2, 7, 40, 357, 4824].into_iter().enumerate() {
            assert_eq!(count_posets_fast(n), expect, "n={n}");
        }
        for n in 0..=5 {
            assert_eq!(count_posets_fast(n), count_posets(n) as u64);
        }
    }

    #[test]
    fn includes_chain_and_antichain() {
        let posets = enumerate_posets(3);
        let chain = crate::generate::chain(3).transitive_closure();
        let antichain = Dag::edgeless(3);
        assert!(posets.contains(&chain));
        assert!(posets.contains(&antichain));
    }
}
