//! Canonical forms of small posets, with orbit and automorphism counts.
//!
//! The universe sweeps in `ccmm-core` enumerate *naturally labelled*
//! posets (see [`crate::poset`]), but every memory-model property they
//! check is invariant under dag isomorphism — the sweep does `e(P)/|Aut|`
//! times more work per isomorphism class than necessary. This module
//! computes, for any dag small enough to enumerate linear extensions:
//!
//! * a **canonical key** identifying the isomorphism class: the
//!   lexicographically least ancestor-mask vector over all linear
//!   extensions, which is exactly the *first* member of the class in
//!   [`crate::poset::for_each_poset`] enumeration order;
//! * the **orbit size**: how many naturally labelled posets are
//!   isomorphic to it (`e(P) / |Aut(P)|` — two linear extensions induce
//!   the same labelling iff they differ by an automorphism);
//! * the **automorphism count** `|Aut(P)|`.
//!
//! A sweep over canonical representatives only, weighting each by its
//! orbit, therefore reproduces labelled-sweep counts *exactly* — integer
//! for integer — while scanning A000112 (1, 1, 2, 5, 16, 63, 318)
//! classes per size instead of A006455 (1, 1, 2, 7, 40, 357, 4824)
//! labelled posets.

use crate::graph::{Dag, NodeId};
use crate::poset::for_each_poset_indexed;
use crate::topo::for_each_topo_sort;
use std::ops::ControlFlow;

/// The isomorphism-class data of one dag: canonical key, orbit size, and
/// automorphism count. Produced by [`canon_info`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonInfo {
    /// The class's canonical ancestor-mask vector: entry `j` is the bitmask
    /// of (relabelled) ancestors of node `j` in the canonical labelling.
    pub key: Vec<u32>,
    /// Whether the input dag *is* the canonical representative (its own
    /// ancestor-mask vector equals `key`; always false when the dag is not
    /// naturally labelled).
    pub is_canonical: bool,
    /// Number of naturally labelled posets isomorphic to the input:
    /// `extensions / automorphisms`.
    pub orbit: u64,
    /// `|Aut(P)|`, the number of poset automorphisms.
    pub automorphisms: u64,
    /// `e(P)`, the number of linear extensions.
    pub extensions: u64,
}

/// Computes the [`CanonInfo`] of `dag`, which must be transitively closed
/// (every strict precedence pair an explicit edge, as the poset enumerator
/// emits). Enumerates all linear extensions, so `n` must stay small.
pub fn canon_info(dag: &Dag) -> CanonInfo {
    let n = dag.node_count();
    assert!(n <= 10, "canonical form enumerates linear extensions; n={n} is too large");
    // Each linear extension t relabels the poset: new node j = t[j], whose
    // ancestor mask is the positions of t[j]'s ancestors under t. The
    // relabelled poset is naturally labelled (ancestors precede in t), and
    // every natural labelling of the class arises this way.
    let mut pos = vec![0usize; n];
    let mut vectors: Vec<Vec<u32>> = Vec::new();
    let _ = for_each_topo_sort(dag, |t| {
        for (i, u) in t.iter().enumerate() {
            pos[u.index()] = i;
        }
        let key: Vec<u32> = t
            .iter()
            .map(|&v| dag.predecessors(v).iter().fold(0u32, |m, u| m | (1 << pos[u.index()])))
            .collect();
        vectors.push(key);
        ControlFlow::Continue(())
    });
    let extensions = vectors.len() as u64;
    // The dag's own vector, defined only when it is naturally labelled.
    let self_key: Option<Vec<u32>> = dag.edges().all(|(u, v)| u.index() < v.index()).then(|| {
        (0..n)
            .map(|v| {
                dag.predecessors(NodeId::new(v)).iter().fold(0u32, |m, u| m | (1 << u.index()))
            })
            .collect()
    });
    vectors.sort_unstable();
    vectors.dedup();
    let orbit = vectors.len() as u64;
    let key = vectors.into_iter().next().expect("every dag has at least one linear extension");
    CanonInfo {
        is_canonical: self_key.as_ref() == Some(&key),
        orbit,
        automorphisms: extensions / orbit,
        extensions,
        key,
    }
}

/// The canonical key of `dag`'s isomorphism class (see [`canon_info`]).
pub fn canonical_key(dag: &Dag) -> Vec<u32> {
    canon_info(dag).key
}

/// The canonical representative of `dag`'s class as a transitive-closure
/// dag — the first isomorphic naturally labelled poset in
/// [`crate::poset::for_each_poset`] order. Isomorphic dags map to the
/// *same* dag, so it can key shared caches (e.g. memoised reachability).
pub fn canonical_form(dag: &Dag) -> Dag {
    let key = canonical_key(dag);
    let mut edges = Vec::new();
    for (v, &mask) in key.iter().enumerate() {
        for u in 0..v {
            if mask & (1 << u) != 0 {
                edges.push((u, v));
            }
        }
    }
    Dag::from_edges(key.len(), &edges).expect("canonical key encodes forward edges")
}

/// Calls `f` with every **canonical** naturally labelled poset on `n`
/// elements — one representative per isomorphism class — passing the
/// poset's *global* index in [`for_each_poset_indexed`] order (so indices
/// remain comparable with the labelled enumeration: the representative is
/// the first member of its class, and witness merging by smallest index
/// still reproduces the serial labelled scan) and its [`CanonInfo`].
pub fn for_each_canonical_poset<F: FnMut(usize, &Dag, &CanonInfo)>(n: usize, mut f: F) {
    for_each_poset_indexed(n, |idx, dag| {
        let info = canon_info(dag);
        if info.is_canonical {
            f(idx, dag, &info);
        }
    });
}

/// The number of isomorphism classes of posets on `n` elements (A000112).
pub fn count_canonical_posets(n: usize) -> usize {
    let mut c = 0;
    for_each_canonical_poset(n, |_, _, _| c += 1);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poset::count_posets;

    #[test]
    fn class_counts_match_oeis_a000112() {
        // Unlabelled posets: 1, 1, 2, 5, 16, 63 for n = 0..=5.
        for (n, expect) in [1usize, 1, 2, 5, 16, 63].into_iter().enumerate() {
            assert_eq!(count_canonical_posets(n), expect, "n={n}");
        }
    }

    #[test]
    fn orbit_sums_recover_labelled_counts() {
        // Σ orbit over class representatives = # naturally labelled posets
        // (A006455) — the exactness guarantee the weighted sweep rests on.
        for n in 0..=5 {
            let mut total = 0u64;
            for_each_canonical_poset(n, |_, _, info| total += info.orbit);
            assert_eq!(total, count_posets(n) as u64, "n={n}");
        }
    }

    #[test]
    fn orbit_times_automorphisms_is_extension_count() {
        for n in 0..=5 {
            crate::poset::for_each_poset(n, |dag| {
                let info = canon_info(dag);
                assert_eq!(
                    info.orbit * info.automorphisms,
                    info.extensions,
                    "orbit-stabilizer violated on {dag:?}"
                );
                assert_eq!(info.extensions, crate::topo::count_topo_sorts(dag) as u64);
            });
        }
    }

    #[test]
    fn representative_is_first_of_its_class_in_enumeration_order() {
        // Scanning posets in order, the first time each key appears must
        // be its canonical member, and later members must not be canonical.
        for n in 0..=4 {
            let mut seen: std::collections::HashMap<Vec<u32>, u64> =
                std::collections::HashMap::new();
            crate::poset::for_each_poset(n, |dag| {
                let info = canon_info(dag);
                match seen.get_mut(&info.key) {
                    None => {
                        assert!(info.is_canonical, "first of class not canonical: {dag:?}");
                        seen.insert(info.key.clone(), 1);
                    }
                    Some(count) => {
                        assert!(!info.is_canonical, "second canonical member: {dag:?}");
                        *count += 1;
                    }
                }
            });
            // Each class was seen exactly `orbit` times.
            for_each_canonical_poset(n, |_, dag, info| {
                assert_eq!(seen[&info.key], info.orbit, "orbit miscount for {dag:?}");
            });
        }
    }

    #[test]
    fn canonical_form_is_idempotent_and_canonical() {
        crate::poset::for_each_poset(4, |dag| {
            let rep = canonical_form(dag);
            let info = canon_info(&rep);
            assert!(info.is_canonical);
            assert_eq!(info.key, canonical_key(dag));
            assert_eq!(canonical_form(&rep), rep);
        });
    }

    #[test]
    fn known_small_classes() {
        // n = 2: the chain and the antichain.
        let chain = Dag::from_edges(2, &[(0, 1)]).unwrap();
        let anti = Dag::edgeless(2);
        let ci = canon_info(&chain);
        assert_eq!((ci.orbit, ci.automorphisms, ci.extensions), (1, 1, 1));
        let ai = canon_info(&anti);
        assert_eq!((ai.orbit, ai.automorphisms, ai.extensions), (1, 2, 2));
        // The "V" poset 0→1, 0→2 has an automorphism swapping 1 and 2.
        let v = Dag::from_edges(3, &[(0, 1), (0, 2)]).unwrap();
        let vi = canon_info(&v);
        assert_eq!((vi.orbit, vi.automorphisms, vi.extensions), (1, 2, 2));
        // One chain edge + isolated node: 3 labellings, trivial Aut.
        let mixed = Dag::from_edges(3, &[(0, 1)]).unwrap();
        let mi = canon_info(&mixed);
        assert_eq!(mi.orbit, 3);
        assert_eq!(mi.automorphisms, 1);
    }

    #[test]
    fn empty_and_singleton() {
        let e = canon_info(&Dag::empty());
        assert_eq!((e.orbit, e.automorphisms, e.extensions), (1, 1, 1));
        assert!(e.is_canonical && e.key.is_empty());
        let s = canon_info(&Dag::edgeless(1));
        assert_eq!((s.orbit, s.automorphisms, s.extensions), (1, 1, 1));
        assert!(s.is_canonical);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Relabels `dag` by `perm` (new index of old node `u` is `perm[u]`).
    fn relabel(dag: &Dag, perm: &[usize]) -> Dag {
        let edges: Vec<(usize, usize)> =
            dag.edges().map(|(u, v)| (perm[u.index()], perm[v.index()])).collect();
        Dag::from_edges(dag.node_count(), &edges).expect("relabelling preserves acyclicity")
    }

    proptest! {
        #[test]
        fn canonical_key_is_relabelling_invariant(
            poset_idx in 0usize..357,
            perm_seed in 0usize..720,
        ) {
            // Pick the poset_idx-th 5-node poset and a permutation of its
            // nodes by Lehmer decoding of perm_seed.
            let mut target = None;
            let mut i = 0;
            crate::poset::for_each_poset(5, |d| {
                if i == poset_idx {
                    target = Some(d.clone());
                }
                i += 1;
            });
            let dag = target.expect("357 posets of size 5");
            let mut avail: Vec<usize> = (0..5).collect();
            let mut perm = Vec::new();
            let mut s = perm_seed;
            for k in (1..=5).rev() {
                perm.push(avail.remove(s % k));
                s /= k;
            }
            let relabelled = relabel(&dag, &perm);
            prop_assert_eq!(canonical_key(&relabelled), canonical_key(&dag));
            prop_assert_eq!(canonical_form(&relabelled), canonical_form(&dag));
            let a = canon_info(&dag);
            let b = canon_info(&relabelled);
            prop_assert_eq!(a.orbit, b.orbit);
            prop_assert_eq!(a.automorphisms, b.automorphisms);
        }
    }
}
