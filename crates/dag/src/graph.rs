//! The finite directed acyclic graph underlying a computation.
//!
//! Nodes are dense indices `0..n` (see [`NodeId`]); edges are stored as
//! forward and backward adjacency lists. The structure is immutable once
//! built — all paper operations that "grow" a computation (extension,
//! augmentation, relaxation) produce a new `Dag`.

use crate::bitset::BitSet;
use crate::error::DagError;

/// A node of a computation dag, a dense index in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

serde::impl_serde_newtype!(NodeId);

impl NodeId {
    /// The node's dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A finite directed acyclic graph with dense node indices.
#[derive(Clone, PartialEq, Eq)]
pub struct Dag {
    succ: Vec<Vec<NodeId>>,
    pred: Vec<Vec<NodeId>>,
    edge_count: usize,
}

serde::impl_serde_struct!(Dag { succ, pred, edge_count });

impl Dag {
    /// An empty dag (the dag of the empty computation ε).
    pub fn empty() -> Self {
        Dag { succ: Vec::new(), pred: Vec::new(), edge_count: 0 }
    }

    /// A dag with `n` nodes and no edges.
    pub fn edgeless(n: usize) -> Self {
        Dag { succ: vec![Vec::new(); n], pred: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Builds a dag from an edge list over `n` nodes.
    ///
    /// Rejects out-of-range endpoints, self-loops, and cycles. Duplicate
    /// edges are collapsed.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, DagError> {
        let mut dag = Dag::edgeless(n);
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(DagError::NodeOutOfRange { node: u.max(v), n });
            }
            if u == v {
                return Err(DagError::SelfLoop { node: u });
            }
            if !dag.succ[u].contains(&NodeId::new(v)) {
                dag.succ[u].push(NodeId::new(v));
                dag.pred[v].push(NodeId::new(u));
                dag.edge_count += 1;
            }
        }
        for s in dag.succ.iter_mut().chain(dag.pred.iter_mut()) {
            s.sort_unstable();
        }
        if dag.toposort_kahn().is_none() {
            return Err(DagError::CycleDetected);
        }
        Ok(dag)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the dag has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Iterates over all nodes in index order.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.succ.len()).map(NodeId::new)
    }

    /// Iterates over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (NodeId::new(u), v)))
    }

    /// Direct successors of `u`.
    #[inline]
    pub fn successors(&self, u: NodeId) -> &[NodeId] {
        &self.succ[u.index()]
    }

    /// Direct predecessors of `u`.
    #[inline]
    pub fn predecessors(&self, u: NodeId) -> &[NodeId] {
        &self.pred[u.index()]
    }

    /// Whether edge `(u, v)` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.succ[u.index()].binary_search(&v).is_ok()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.pred[u.index()].len()
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.succ[u.index()].len()
    }

    /// Nodes with no predecessors.
    pub fn roots(&self) -> Vec<NodeId> {
        self.nodes().filter(|&u| self.in_degree(u) == 0).collect()
    }

    /// Nodes with no successors.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes().filter(|&u| self.out_degree(u) == 0).collect()
    }

    /// Kahn's algorithm; `None` iff the graph has a cycle.
    ///
    /// Ties are broken by smallest index, so the result is deterministic.
    pub(crate) fn toposort_kahn(&self) -> Option<Vec<NodeId>> {
        let n = self.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|u| self.pred[u].len()).collect();
        // A sorted frontier (BinaryHeap of Reverse would also do; n is small
        // enough in practice that a linear scan of a bitset wins on simplicity).
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
            (0..n).filter(|&u| indeg[u] == 0).map(std::cmp::Reverse).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(u)) = ready.pop() {
            order.push(NodeId::new(u));
            for &v in &self.succ[u] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    ready.push(std::cmp::Reverse(v.index()));
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Whether `other` is a relaxation of `self`: same nodes, `E' ⊆ E`.
    pub fn is_relaxation_of(&self, other: &Dag) -> bool {
        // `self` is the relaxation: every edge of self appears in other.
        self.node_count() == other.node_count() && self.edges().all(|(u, v)| other.has_edge(u, v))
    }

    /// Returns the dag with one edge removed (used to enumerate relaxations).
    pub fn without_edge(&self, u: NodeId, v: NodeId) -> Option<Dag> {
        if !self.has_edge(u, v) {
            return None;
        }
        let mut d = self.clone();
        d.succ[u.index()].retain(|&x| x != v);
        d.pred[v.index()].retain(|&x| x != u);
        d.edge_count -= 1;
        Some(d)
    }

    /// Appends a new node with edges from each node in `preds`.
    ///
    /// This is the paper's *extension* of a computation dag by one node
    /// (the op labelling lives at the computation level).
    pub fn extend_with(&self, preds: &[NodeId]) -> Result<Dag, DagError> {
        let n = self.node_count();
        let mut d = self.clone();
        d.succ.push(Vec::new());
        d.pred.push(Vec::new());
        let new = NodeId::new(n);
        let mut seen = BitSet::new(n);
        for &p in preds {
            if p.index() >= n {
                return Err(DagError::NodeOutOfRange { node: p.index(), n });
            }
            if !seen.contains(p.index()) {
                seen.insert(p.index());
                d.succ[p.index()].push(new);
                d.pred[n].push(p);
                d.edge_count += 1;
            }
        }
        d.pred[n].sort_unstable();
        Ok(d)
    }

    /// In-place [`extend_with`](Dag::extend_with): appends a new node with
    /// edges from each node in `preds` without cloning the dag, returning
    /// the new node's id. On error the dag is unchanged.
    pub fn push_node(&mut self, preds: &[NodeId]) -> Result<NodeId, DagError> {
        let n = self.node_count();
        if let Some(&p) = preds.iter().find(|p| p.index() >= n) {
            return Err(DagError::NodeOutOfRange { node: p.index(), n });
        }
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        let new = NodeId::new(n);
        let mut seen = BitSet::new(n);
        for &p in preds {
            if !seen.contains(p.index()) {
                seen.insert(p.index());
                self.succ[p.index()].push(new);
                self.pred[n].push(p);
                self.edge_count += 1;
            }
        }
        self.pred[n].sort_unstable();
        Ok(new)
    }

    /// Removes the most recently appended node, undoing one
    /// [`push_node`](Dag::push_node). The last node has no successors by
    /// construction, so only its incoming edges need unlinking. No-op on
    /// an empty dag.
    pub fn pop_node(&mut self) {
        let Some(preds) = self.pred.pop() else { return };
        let last = self.succ.len() - 1;
        debug_assert!(self.succ[last].is_empty(), "popped node had successors");
        self.succ.pop();
        for p in preds {
            // The popped node is always the most recent entry in each
            // predecessor's successor list.
            let popped = self.succ[p.index()].pop();
            debug_assert_eq!(popped, Some(NodeId::new(last)));
            self.edge_count -= 1;
        }
    }

    /// The *augmented* dag: a new final node succeeding every old node
    /// (Definition 11 of the paper).
    pub fn augment(&self) -> Dag {
        let all: Vec<NodeId> = self.nodes().collect();
        self.extend_with(&all).expect("all nodes are in range")
    }

    /// Whether `keep` is downward-closed (closed under predecessors), i.e.
    /// induces a *prefix* of this dag.
    pub fn is_prefix_set(&self, keep: &BitSet) -> bool {
        self.nodes()
            .filter(|u| keep.contains(u.index()))
            .all(|u| self.pred[u.index()].iter().all(|p| keep.contains(p.index())))
    }

    /// The subgraph induced by `keep`, with nodes renumbered densely in
    /// increasing order of old index. Returns the new dag and the map from
    /// new index to old `NodeId`.
    pub fn induced_subgraph(&self, keep: &BitSet) -> (Dag, Vec<NodeId>) {
        let old_of_new: Vec<NodeId> = keep.iter().map(NodeId::new).collect();
        let mut new_of_old = vec![usize::MAX; self.node_count()];
        for (new, old) in old_of_new.iter().enumerate() {
            new_of_old[old.index()] = new;
        }
        let mut d = Dag::edgeless(old_of_new.len());
        for (new_u, old_u) in old_of_new.iter().enumerate() {
            for &old_v in &self.succ[old_u.index()] {
                let new_v = new_of_old[old_v.index()];
                if new_v != usize::MAX {
                    d.succ[new_u].push(NodeId::new(new_v));
                    d.pred[new_v].push(NodeId::new(new_u));
                    d.edge_count += 1;
                }
            }
        }
        for s in d.succ.iter_mut().chain(d.pred.iter_mut()) {
            s.sort_unstable();
        }
        (d, old_of_new)
    }

    /// The transitive reduction of this dag (unique for dags).
    pub fn transitive_reduction(&self) -> Dag {
        let reach = crate::reach::Reachability::new(self);
        let mut edges = Vec::new();
        for (u, v) in self.edges() {
            // (u,v) is redundant iff some other successor of u reaches v.
            let redundant = self.succ[u.index()].iter().any(|&w| w != v && reach.reaches(w, v));
            if !redundant {
                edges.push((u.index(), v.index()));
            }
        }
        Dag::from_edges(self.node_count(), &edges).expect("reduction of a dag is a dag")
    }

    /// The transitive closure of this dag as a new dag with an edge for
    /// every strict precedence pair.
    pub fn transitive_closure(&self) -> Dag {
        let reach = crate::reach::Reachability::new(self);
        let mut edges = Vec::new();
        for u in self.nodes() {
            for v in reach.descendants(u).iter() {
                edges.push((u.index(), v));
            }
        }
        Dag::from_edges(self.node_count(), &edges).expect("closure of a dag is a dag")
    }
}

impl std::fmt::Debug for Dag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Dag(n={}, edges=[", self.node_count())?;
        for (i, (u, v)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}->{v}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_dag() {
        let d = Dag::empty();
        assert!(d.is_empty());
        assert_eq!(d.node_count(), 0);
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn from_edges_builds_diamond() {
        let d = diamond();
        assert_eq!(d.node_count(), 4);
        assert_eq!(d.edge_count(), 4);
        assert!(d.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!d.has_edge(NodeId::new(1), NodeId::new(0)));
        assert_eq!(d.roots(), vec![NodeId::new(0)]);
        assert_eq!(d.leaves(), vec![NodeId::new(3)]);
    }

    #[test]
    fn from_edges_rejects_cycle() {
        assert!(matches!(
            Dag::from_edges(3, &[(0, 1), (1, 2), (2, 0)]),
            Err(DagError::CycleDetected)
        ));
    }

    #[test]
    fn from_edges_rejects_self_loop() {
        assert!(matches!(Dag::from_edges(2, &[(0, 0)]), Err(DagError::SelfLoop { node: 0 })));
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        assert!(matches!(
            Dag::from_edges(2, &[(0, 5)]),
            Err(DagError::NodeOutOfRange { node: 5, n: 2 })
        ));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let d = Dag::from_edges(2, &[(0, 1), (0, 1)]).unwrap();
        assert_eq!(d.edge_count(), 1);
    }

    #[test]
    fn extend_with_appends_node() {
        let d = diamond();
        let e = d.extend_with(&[NodeId::new(3), NodeId::new(1)]).unwrap();
        assert_eq!(e.node_count(), 5);
        assert_eq!(e.edge_count(), 6);
        assert!(e.has_edge(NodeId::new(3), NodeId::new(4)));
        assert!(e.has_edge(NodeId::new(1), NodeId::new(4)));
    }

    #[test]
    fn push_node_matches_extend_with() {
        let d = diamond();
        let preds = [NodeId::new(3), NodeId::new(1), NodeId::new(1)];
        let cloned = d.extend_with(&preds).unwrap();
        let mut inplace = d.clone();
        let new = inplace.push_node(&preds).unwrap();
        assert_eq!(new, NodeId::new(4));
        assert_eq!(inplace, cloned);
    }

    #[test]
    fn push_node_rejects_out_of_range_and_leaves_dag_unchanged() {
        let mut d = diamond();
        let before = d.clone();
        assert!(d.push_node(&[NodeId::new(9)]).is_err());
        assert_eq!(d, before);
    }

    #[test]
    fn pop_node_undoes_push_node() {
        let mut d = diamond();
        let before = d.clone();
        d.push_node(&[NodeId::new(2), NodeId::new(3)]).unwrap();
        d.pop_node();
        assert_eq!(d, before);
        // Round-trip through several pushes and pops.
        d.push_node(&[NodeId::new(0)]).unwrap();
        d.push_node(&[NodeId::new(4)]).unwrap();
        d.pop_node();
        d.pop_node();
        assert_eq!(d, before);
    }

    #[test]
    fn augment_adds_final_node() {
        let d = diamond();
        let a = d.augment();
        assert_eq!(a.node_count(), 5);
        let f = NodeId::new(4);
        for u in d.nodes() {
            assert!(a.has_edge(u, f));
        }
        assert_eq!(a.leaves(), vec![f]);
    }

    #[test]
    fn prefix_set_detection() {
        let d = diamond();
        let mut good = BitSet::new(4);
        good.insert(0);
        good.insert(1);
        assert!(d.is_prefix_set(&good));
        let mut bad = BitSet::new(4);
        bad.insert(3); // 3's predecessors are missing
        assert!(!d.is_prefix_set(&bad));
        // Empty set is a prefix.
        assert!(d.is_prefix_set(&BitSet::new(4)));
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let d = diamond();
        let mut keep = BitSet::new(4);
        keep.insert(0);
        keep.insert(2);
        keep.insert(3);
        let (sub, old) = d.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(old, vec![NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
        // Edges 0->2 and 2->3 survive as 0->1 and 1->2.
        assert!(sub.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(sub.has_edge(NodeId::new(1), NodeId::new(2)));
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn relaxation_check() {
        let d = diamond();
        let r = d.without_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(r.is_relaxation_of(&d));
        assert!(!d.is_relaxation_of(&r));
        assert!(d.without_edge(NodeId::new(0), NodeId::new(3)).is_none());
    }

    #[test]
    fn transitive_reduction_of_closed_diamond() {
        let closed = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]).unwrap();
        let red = closed.transitive_reduction();
        assert_eq!(red.edge_count(), 4);
        assert!(!red.has_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn transitive_closure_of_chain() {
        let chain = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let clo = chain.transitive_closure();
        assert_eq!(clo.edge_count(), 3);
        assert!(clo.has_edge(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn kahn_is_deterministic_smallest_first() {
        let d = Dag::from_edges(4, &[(2, 0), (3, 1)]).unwrap();
        let t = d.toposort_kahn().unwrap();
        // Smallest ready index first: 2 unlocks 0, which is popped before 3.
        assert_eq!(t, vec![NodeId::new(2), NodeId::new(0), NodeId::new(3), NodeId::new(1)]);
    }
}
