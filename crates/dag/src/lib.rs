//! # ccmm-dag — dag substrate for computation-centric memory models
//!
//! This crate provides the graph machinery under
//! [Frigo & Luchangco, *Computation-Centric Memory Models*, SPAA 1998]:
//!
//! * [`Dag`]: finite dags with dense node indices, plus the paper's dag
//!   operations — prefixes, one-node *extensions*, *augmentation*
//!   (Definition 11), and *relaxations*;
//! * [`Reachability`]: O(1) strict-precedence (`u ≺ v`) queries via
//!   transitive-closure bitsets;
//! * [`topo`]: deterministic, random, and exhaustive topological sorts
//!   (`TS(G)`, the basis of the SC and LC model definitions);
//! * [`poset`]: exhaustive enumeration of naturally labelled posets, the
//!   computation universes used to machine-check the paper's theorems;
//! * [`canon`]: canonical forms, orbit sizes, and automorphism counts for
//!   small posets — the symmetry-reduced (up-to-isomorphism) enumeration
//!   behind the weighted universe sweeps;
//! * [`generate`] and [`sp`]: random and series-parallel (fork/join)
//!   dag generators;
//! * [`dot`]: Graphviz export.
//!
//! # Example
//!
//! ```
//! use ccmm_dag::{Dag, NodeId, Reachability};
//!
//! // The diamond: 0 forks to 1 and 2, which join at 3.
//! let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
//! let reach = Reachability::new(&dag);
//! assert!(reach.reaches(NodeId::new(0), NodeId::new(3)));
//! assert!(reach.incomparable(NodeId::new(1), NodeId::new(2)));
//!
//! // Exactly two interleavings of the parallel branch.
//! assert_eq!(ccmm_dag::topo::count_topo_sorts(&dag), 2);
//!
//! // The paper's augmentation: a new final node after everything.
//! let aug = dag.augment();
//! assert_eq!(aug.leaves(), vec![NodeId::new(4)]);
//! ```

#![warn(missing_docs)]

pub mod bitset;
pub mod canon;
pub mod dot;
pub mod error;
pub mod generate;
pub mod graph;
pub mod metrics;
pub mod poset;
pub mod reach;
pub mod sp;
pub mod topo;

pub use bitset::BitSet;
pub use error::DagError;
pub use graph::{Dag, NodeId};
pub use reach::Reachability;
pub use sp::{SpDag, SpExpr, SpOrder};
