//! A fixed-capacity bit set backed by `u64` words.
//!
//! Reachability queries dominate the cost of every membership checker in
//! this workspace, so the representation is kept deliberately simple and
//! cache-friendly: one contiguous `Vec<u64>`, no growth, no indirection.
//! All set operations between two sets require equal capacity.

/// A fixed-capacity set of `usize` values in `0..capacity`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

const WORD_BITS: usize = 64;

#[inline]
fn word_index(bit: usize) -> (usize, u64) {
    (bit / WORD_BITS, 1u64 << (bit % WORD_BITS))
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(WORD_BITS)], capacity }
    }

    /// Creates a set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim();
        s
    }

    /// The maximum number of distinct values this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Raises the capacity to `new_capacity`, preserving all current
    /// members. No-op if the set is already at least that large. This is
    /// the one growth path, used by the incremental reachability append
    /// ([`crate::Reachability::extend`]) to keep all closure sets at a
    /// shared geometric capacity.
    pub fn grow(&mut self, new_capacity: usize) {
        if new_capacity <= self.capacity {
            return;
        }
        self.words.resize(new_capacity.div_ceil(WORD_BITS), 0);
        self.capacity = new_capacity;
    }

    /// Zeroes any bits beyond `capacity` (internal invariant).
    fn trim(&mut self) {
        let extra = self.words.len() * WORD_BITS - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0 >> extra;
            }
        }
    }

    /// Inserts `bit`. Panics if `bit >= capacity`.
    #[inline]
    pub fn insert(&mut self, bit: usize) {
        assert!(bit < self.capacity, "bit {bit} out of capacity {}", self.capacity);
        let (w, m) = word_index(bit);
        self.words[w] |= m;
    }

    /// Removes `bit`. Panics if `bit >= capacity`.
    #[inline]
    pub fn remove(&mut self, bit: usize) {
        assert!(bit < self.capacity, "bit {bit} out of capacity {}", self.capacity);
        let (w, m) = word_index(bit);
        self.words[w] &= !m;
    }

    /// Tests membership of `bit`.
    #[inline]
    pub fn contains(&self, bit: usize) -> bool {
        if bit >= self.capacity {
            return false;
        }
        let (w, m) = word_index(bit);
        self.words[w] & m != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self −= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Whether the two sets share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Re-initialises to an empty set of `capacity` bits in place,
    /// reusing the existing word storage (no allocation when the new
    /// capacity needs no more words than the old one).
    pub fn reset(&mut self, capacity: usize) {
        let words = capacity.div_ceil(WORD_BITS);
        self.words.truncate(words);
        for w in &mut self.words {
            *w = 0;
        }
        self.words.resize(words, 0);
        self.capacity = capacity;
    }

    /// Makes `self` an exact copy of `other`, reusing storage
    /// (`clone_from` without the derive's field-by-field indirection).
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.capacity = other.capacity;
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Ones<'_> {
        Ones { words: &self.words, current: self.words.first().copied().unwrap_or(0), word_idx: 0 }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set whose capacity is `max + 1`.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over set bits, lowest first.
pub struct Ones<'a> {
    words: &'a [u64],
    current: u64,
    word_idx: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_has_no_members() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert!(!s.contains(99));
    }

    #[test]
    fn grow_preserves_members_and_extends_range() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(9);
        s.grow(200);
        assert_eq!(s.capacity(), 200);
        assert!(s.contains(3) && s.contains(9));
        assert_eq!(s.len(), 2);
        s.insert(199);
        assert!(s.contains(199));
        // Shrinking requests are ignored.
        s.grow(5);
        assert_eq!(s.capacity(), 200);
        assert!(s.contains(199));
    }

    #[test]
    fn insert_and_contains_across_word_boundary() {
        let mut s = BitSet::new(130);
        for &b in &[0, 63, 64, 65, 127, 128, 129] {
            s.insert(b);
        }
        for &b in &[0, 63, 64, 65, 127, 128, 129] {
            assert!(s.contains(b), "missing {b}");
        }
        assert!(!s.contains(1));
        assert_eq!(s.len(), 7);
    }

    #[test]
    fn remove_clears_membership() {
        let mut s = BitSet::new(10);
        s.insert(3);
        s.insert(7);
        s.remove(3);
        assert!(!s.contains(3));
        assert!(s.contains(7));
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        assert!(!s.contains(70));
    }

    #[test]
    fn union_intersection_difference() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn subset_and_intersects() {
        let a: BitSet = [1usize, 2].into_iter().collect();
        let mut b = BitSet::new(3);
        b.insert(1);
        b.insert(2);
        let mut c = BitSet::new(3);
        c.insert(2);
        assert!(c.is_subset(&b));
        assert!(!b.is_subset(&c));
        assert!(b.intersects(&c));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iter_on_empty_words() {
        let s = BitSet::new(0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn iter_yields_sorted_unique() {
        let mut s = BitSet::new(200);
        for &b in &[199, 5, 64, 5, 128] {
            s.insert(b);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 64, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(65);
        s.clear();
        assert!(s.is_empty());
    }
}
