//! Random and structured dag generators for testing and benchmarking.
//!
//! All generators produce dags whose edges go from smaller to larger node
//! indices, so node index order is always one valid topological sort.

use crate::graph::Dag;
use rand::Rng;

/// A random dag in the `G(n, p)` model restricted to forward edges: each
/// pair `(i, j)` with `i < j` is an edge independently with probability `p`.
pub fn gnp_dag<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Dag {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut edges = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                edges.push((i, j));
            }
        }
    }
    Dag::from_edges(n, &edges).expect("forward edges cannot form a cycle")
}

/// A layered dag: `layers` layers of `width` nodes; every node has `deg`
/// random predecessors in the previous layer (fewer if the layer is small).
///
/// Models the barrier-style computations of data-parallel programs.
pub fn layered_dag<R: Rng + ?Sized>(layers: usize, width: usize, deg: usize, rng: &mut R) -> Dag {
    let n = layers * width;
    let mut edges = Vec::new();
    for layer in 1..layers {
        for j in 0..width {
            let v = layer * width + j;
            let deg = deg.min(width);
            // Sample `deg` distinct predecessors from the previous layer.
            let mut prev: Vec<usize> = (0..width).map(|k| (layer - 1) * width + k).collect();
            for d in 0..deg {
                let pick = rng.gen_range(d..prev.len());
                prev.swap(d, pick);
                edges.push((prev[d], v));
            }
        }
    }
    Dag::from_edges(n, &edges).expect("forward edges cannot form a cycle")
}

/// A complete binary fork/join tree of the given depth: a root forks two
/// subtrees which join back. Returns a series-parallel dag with one source
/// and one sink.
///
/// `depth = 0` yields a single node.
pub fn fork_join_tree(depth: usize) -> Dag {
    // Recursively allocate: block(d) = number of nodes of a depth-d block.
    // block(0) = 1; block(d) = 2 + 2 * block(d-1)  (fork node, two sub-blocks,
    // join node).
    fn build(depth: usize, next: &mut usize, edges: &mut Vec<(usize, usize)>) -> (usize, usize) {
        let src = *next;
        *next += 1;
        if depth == 0 {
            return (src, src);
        }
        let (l_in, l_out) = build(depth - 1, next, edges);
        let (r_in, r_out) = build(depth - 1, next, edges);
        let sink = *next;
        *next += 1;
        edges.push((src, l_in));
        edges.push((src, r_in));
        edges.push((l_out, sink));
        edges.push((r_out, sink));
        (src, sink)
    }
    let mut next = 0;
    let mut edges = Vec::new();
    build(depth, &mut next, &mut edges);
    Dag::from_edges(next, &edges).expect("fork/join trees are acyclic")
}

/// A random series-parallel dag with approximately `leaves` leaf nodes:
/// a random composition tree of series/parallel combinators over leaves.
///
/// Returns the lowered dag (fork/join nodes included), single-source and
/// single-sink. `p_series` is the probability an internal combinator is
/// series rather than parallel.
pub fn random_sp_dag<R: Rng + ?Sized>(leaves: usize, p_series: f64, rng: &mut R) -> Dag {
    assert!(leaves >= 1);
    fn build<R: Rng + ?Sized>(leaves: usize, p_series: f64, rng: &mut R) -> crate::sp::SpExpr {
        if leaves == 1 {
            return crate::sp::SpExpr::Leaf;
        }
        let left = rng.gen_range(1..leaves);
        let a = build(left, p_series, rng);
        let b = build(leaves - left, p_series, rng);
        if rng.gen_bool(p_series) {
            a.then(b)
        } else {
            a.par(b)
        }
    }
    build(leaves, p_series, rng).build().dag
}

/// A simple chain of `n` nodes.
pub fn chain(n: usize) -> Dag {
    let edges: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Dag::from_edges(n, &edges).expect("a chain is acyclic")
}

/// `k` independent chains of length `len` sharing a common source and sink.
///
/// This is the shape of the nonconstructibility witness family (Figure 4 of
/// the paper generalises to wider versions of this dag).
pub fn parallel_chains(k: usize, len: usize) -> Dag {
    assert!(k >= 1 && len >= 1);
    let n = 2 + k * len;
    let source = 0;
    let sink = n - 1;
    let mut edges = Vec::new();
    for c in 0..k {
        let base = 1 + c * len;
        edges.push((source, base));
        for i in 0..len - 1 {
            edges.push((base + i, base + i + 1));
        }
        edges.push((base + len - 1, sink));
    }
    Dag::from_edges(n, &edges).expect("parallel chains are acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::Reachability;
    use rand::SeedableRng;

    #[test]
    fn gnp_respects_density_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let d0 = gnp_dag(10, 0.0, &mut rng);
        assert_eq!(d0.edge_count(), 0);
        let d1 = gnp_dag(10, 1.0, &mut rng);
        assert_eq!(d1.edge_count(), 45);
    }

    #[test]
    fn gnp_is_acyclic_and_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let d = gnp_dag(15, 0.3, &mut rng);
            for (u, v) in d.edges() {
                assert!(u.index() < v.index());
            }
        }
    }

    #[test]
    fn layered_dag_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let d = layered_dag(4, 3, 2, &mut rng);
        assert_eq!(d.node_count(), 12);
        // Every non-first-layer node has exactly 2 predecessors.
        for u in d.nodes().skip(3) {
            assert_eq!(d.in_degree(u), 2, "node {u}");
        }
        // First layer has none.
        for u in d.nodes().take(3) {
            assert_eq!(d.in_degree(u), 0);
        }
    }

    #[test]
    fn layered_dag_deg_clamped_to_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let d = layered_dag(2, 2, 10, &mut rng);
        for u in d.nodes().skip(2) {
            assert_eq!(d.in_degree(u), 2);
        }
    }

    #[test]
    fn fork_join_tree_counts() {
        assert_eq!(fork_join_tree(0).node_count(), 1);
        assert_eq!(fork_join_tree(1).node_count(), 4);
        assert_eq!(fork_join_tree(2).node_count(), 10);
        let d = fork_join_tree(3);
        assert_eq!(d.node_count(), 22);
        assert_eq!(d.roots().len(), 1);
        assert_eq!(d.leaves().len(), 1);
    }

    #[test]
    fn fork_join_tree_source_reaches_all() {
        let d = fork_join_tree(3);
        let r = Reachability::new(&d);
        let root = d.roots()[0];
        assert_eq!(r.descendants(root).len(), d.node_count() - 1);
    }

    #[test]
    fn random_sp_dag_structure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let d = random_sp_dag(6, 0.5, &mut rng);
            assert_eq!(d.roots().len(), 1);
            assert_eq!(d.leaves().len(), 1);
            let r = Reachability::new(&d);
            let src = d.roots()[0];
            assert_eq!(r.descendants(src).len(), d.node_count() - 1);
        }
        // Degenerate: all-series with one leaf.
        let single = random_sp_dag(1, 0.5, &mut rng);
        assert_eq!(single.node_count(), 1);
    }

    #[test]
    fn random_sp_dag_series_bias_lengthens() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let serial = random_sp_dag(16, 1.0, &mut rng);
        let parallel = random_sp_dag(16, 0.0, &mut rng);
        assert_eq!(serial.node_count(), 16, "pure series adds no forks");
        assert!(parallel.node_count() > 16, "parallel composition adds fork/join pairs");
        assert!(crate::metrics::height(&serial) > crate::metrics::height(&parallel));
    }

    #[test]
    fn chain_shape() {
        let d = chain(5);
        assert_eq!(d.node_count(), 5);
        assert_eq!(d.edge_count(), 4);
        assert_eq!(chain(0).node_count(), 0);
        assert_eq!(chain(1).edge_count(), 0);
    }

    #[test]
    fn parallel_chains_shape() {
        let d = parallel_chains(3, 2);
        assert_eq!(d.node_count(), 8);
        assert_eq!(d.roots().len(), 1);
        assert_eq!(d.leaves().len(), 1);
        let r = Reachability::new(&d);
        // Middle nodes of distinct chains are incomparable.
        assert!(r.incomparable(crate::graph::NodeId::new(1), crate::graph::NodeId::new(3)));
    }
}
