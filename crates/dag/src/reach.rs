//! Reachability (precedence) queries on a dag.
//!
//! The paper's models constantly ask `u ≺ v` ("u precedes v", i.e. there is
//! a nonempty path from u to v) and "which nodes lie strictly between u and
//! w". We answer both in O(1)/O(n/64) by materialising the transitive
//! closure as per-node ancestor and descendant [`BitSet`]s.

use crate::bitset::BitSet;
use crate::graph::{Dag, NodeId};

/// Precomputed strict-precedence relation of a [`Dag`].
#[derive(Clone, Debug)]
pub struct Reachability {
    /// `desc[u]` = all v with a nonempty path u → v.
    desc: Vec<BitSet>,
    /// `anc[v]` = all u with a nonempty path u → v.
    anc: Vec<BitSet>,
}

impl Reachability {
    /// Builds the transitive closure of `dag` in `O(V · E / 64)` time.
    pub fn new(dag: &Dag) -> Self {
        let mut r = Reachability { desc: Vec::new(), anc: Vec::new() };
        r.rebuild(dag);
        r
    }

    /// Recomputes the closure for `dag` in place, reusing the existing
    /// bitset storage — the sweep hot loop retargets one `Reachability`
    /// per poset instead of allocating `2n` fresh bitsets per labelling.
    pub fn rebuild(&mut self, dag: &Dag) {
        let n = dag.node_count();
        let order = dag.toposort_kahn().expect("Dag invariant guarantees acyclicity");
        self.desc.truncate(n);
        self.anc.truncate(n);
        self.desc.resize_with(n, || BitSet::new(n));
        self.anc.resize_with(n, || BitSet::new(n));
        for b in self.desc.iter_mut().chain(self.anc.iter_mut()) {
            b.reset(n);
        }
        // Reverse topological order: successors are finished first.
        for &u in order.iter().rev() {
            let mut d = std::mem::take(&mut self.desc[u.index()]);
            for &v in dag.successors(u) {
                d.insert(v.index());
                d.union_with(&self.desc[v.index()]);
            }
            self.desc[u.index()] = d;
        }
        for (u, d) in self.desc.iter().enumerate() {
            for v in d.iter() {
                self.anc[v].insert(u);
            }
        }
    }

    /// Appends one node (with edges from `preds`) to the closure without
    /// rebuilding: the new node's ancestor set is the union of its
    /// predecessors' ancestor sets plus the predecessors themselves, its
    /// descendant set starts empty, and the new node is added to each
    /// ancestor's descendant set. Returns the new node's id.
    ///
    /// All closure bitsets share a geometric capacity (doubled when the
    /// node count catches up), so an append costs `O(n/64)` words per
    /// predecessor plus amortized-constant growth — no `O(V · E / 64)`
    /// rebuild. Mirror of [`Dag::push_node`]; panics if a predecessor is
    /// out of range.
    pub fn extend(&mut self, preds: &[NodeId]) -> NodeId {
        let n = self.desc.len();
        let mut cap = self.desc.first().map_or(64, BitSet::capacity);
        if n + 1 > cap {
            cap = (cap * 2).max(n + 1);
            for b in self.desc.iter_mut().chain(self.anc.iter_mut()) {
                b.grow(cap);
            }
        }
        let mut anc = BitSet::new(cap);
        for &p in preds {
            assert!(p.index() < n, "predecessor {p} out of range for {n} nodes");
            anc.insert(p.index());
            anc.union_with(&self.anc[p.index()]);
        }
        for a in anc.iter() {
            self.desc[a].insert(n);
        }
        self.desc.push(BitSet::new(cap));
        self.anc.push(anc);
        NodeId::new(n)
    }

    /// Removes the most recently appended node from the closure, undoing
    /// one [`extend`](Reachability::extend) (LIFO discipline). No-op when
    /// empty.
    pub fn shrink_last(&mut self) {
        let Some(anc) = self.anc.pop() else { return };
        debug_assert!(
            self.desc.last().is_some_and(BitSet::is_empty),
            "shrink_last requires the last node to have no descendants"
        );
        self.desc.pop();
        let last = self.desc.len();
        for a in anc.iter() {
            self.desc[a].remove(last);
        }
    }

    /// Number of nodes of the underlying dag.
    pub fn node_count(&self) -> usize {
        self.desc.len()
    }

    /// Strict precedence: is there a nonempty path `u → v`?
    #[inline]
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.desc[u.index()].contains(v.index())
    }

    /// Reflexive precedence: `u = v` or `u ≺ v`.
    #[inline]
    pub fn reaches_eq(&self, u: NodeId, v: NodeId) -> bool {
        u == v || self.reaches(u, v)
    }

    /// Whether `u` and `v` are incomparable (neither precedes the other).
    #[inline]
    pub fn incomparable(&self, u: NodeId, v: NodeId) -> bool {
        u != v && !self.reaches(u, v) && !self.reaches(v, u)
    }

    /// All strict descendants of `u`.
    #[inline]
    pub fn descendants(&self, u: NodeId) -> &BitSet {
        &self.desc[u.index()]
    }

    /// All strict ancestors of `u`.
    #[inline]
    pub fn ancestors(&self, u: NodeId) -> &BitSet {
        &self.anc[u.index()]
    }

    /// Nodes strictly between `u` and `w`: `{v : u ≺ v ≺ w}`.
    pub fn between(&self, u: NodeId, w: NodeId) -> BitSet {
        let mut b = self.desc[u.index()].clone();
        b.intersect_with(&self.anc[w.index()]);
        b
    }

    /// [`between`], writing into a caller-provided set (no allocation).
    ///
    /// [`between`]: Reachability::between
    pub fn between_into(&self, u: NodeId, w: NodeId, out: &mut BitSet) {
        out.copy_from(&self.desc[u.index()]);
        out.intersect_with(&self.anc[w.index()]);
    }

    /// Number of comparable ordered pairs `(u, v)` with `u ≺ v`.
    pub fn comparable_pairs(&self) -> usize {
        self.desc.iter().map(BitSet::len).sum()
    }

    /// The *width antichain check*: whether `set` is an antichain
    /// (pairwise incomparable).
    pub fn is_antichain(&self, set: &BitSet) -> bool {
        let members: Vec<usize> = set.iter().collect();
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                if self.reaches(NodeId::new(u), NodeId::new(v))
                    || self.reaches(NodeId::new(v), NodeId::new(u))
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn diamond() -> (Dag, Reachability) {
        let d = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let r = Reachability::new(&d);
        (d, r)
    }

    #[test]
    fn reaches_follows_paths() {
        let (_, r) = diamond();
        assert!(r.reaches(n(0), n(3)));
        assert!(r.reaches(n(0), n(1)));
        assert!(!r.reaches(n(1), n(2)));
        assert!(!r.reaches(n(3), n(0)));
        assert!(!r.reaches(n(0), n(0)), "strict precedence is irreflexive");
    }

    #[test]
    fn reaches_eq_is_reflexive() {
        let (_, r) = diamond();
        assert!(r.reaches_eq(n(2), n(2)));
        assert!(r.reaches_eq(n(0), n(3)));
        assert!(!r.reaches_eq(n(3), n(0)));
    }

    #[test]
    fn incomparable_pairs() {
        let (_, r) = diamond();
        assert!(r.incomparable(n(1), n(2)));
        assert!(!r.incomparable(n(0), n(3)));
        assert!(!r.incomparable(n(1), n(1)));
    }

    #[test]
    fn descendants_and_ancestors() {
        let (_, r) = diamond();
        assert_eq!(r.descendants(n(0)).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(r.ancestors(n(3)).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(r.descendants(n(3)).is_empty());
        assert!(r.ancestors(n(0)).is_empty());
    }

    #[test]
    fn between_is_strict() {
        let (_, r) = diamond();
        let b = r.between(n(0), n(3));
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(r.between(n(1), n(2)).is_empty());
    }

    #[test]
    fn comparable_pairs_count() {
        let (_, r) = diamond();
        // 0≺1, 0≺2, 0≺3, 1≺3, 2≺3.
        assert_eq!(r.comparable_pairs(), 5);
    }

    #[test]
    fn antichain_check() {
        let (_, r) = diamond();
        let mut a = BitSet::new(4);
        a.insert(1);
        a.insert(2);
        assert!(r.is_antichain(&a));
        a.insert(3);
        assert!(!r.is_antichain(&a));
        assert!(r.is_antichain(&BitSet::new(4)));
    }

    /// Asserts `a` and `b` answer every precedence query identically
    /// (capacities may differ: `extend` grows geometrically, `new` is
    /// exact).
    fn assert_same_relation(a: &Reachability, b: &Reachability) {
        assert_eq!(a.node_count(), b.node_count());
        for u in 0..a.node_count() {
            for v in 0..a.node_count() {
                assert_eq!(a.reaches(n(u), n(v)), b.reaches(n(u), n(v)), "disagree on {u} ≺ {v}");
            }
            assert_eq!(
                a.descendants(n(u)).iter().collect::<Vec<_>>(),
                b.descendants(n(u)).iter().collect::<Vec<_>>()
            );
            assert_eq!(
                a.ancestors(n(u)).iter().collect::<Vec<_>>(),
                b.ancestors(n(u)).iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn extend_matches_rebuild_on_incremental_construction() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..30 {
            let mut dag = Dag::empty();
            let mut inc = Reachability::new(&dag);
            for step in 0..20 {
                let preds: Vec<NodeId> =
                    (0..step).filter(|_| rng.gen_bool(0.3)).map(NodeId::new).collect();
                dag.push_node(&preds).unwrap();
                let new = inc.extend(&preds);
                assert_eq!(new.index(), step);
                assert_same_relation(&inc, &Reachability::new(&dag));
            }
        }
    }

    #[test]
    fn extend_grows_capacity_past_the_initial_word() {
        // 100 appends in a chain force at least one doubling past 64.
        let mut inc = Reachability::new(&Dag::empty());
        for i in 0..100 {
            let preds: Vec<NodeId> = if i == 0 { vec![] } else { vec![n(i - 1)] };
            inc.extend(&preds);
        }
        assert!(inc.reaches(n(0), n(99)));
        assert_eq!(inc.comparable_pairs(), 100 * 99 / 2);
    }

    #[test]
    fn shrink_last_undoes_extend() {
        let (d, r) = diamond();
        let mut inc = Reachability::new(&d);
        inc.extend(&[n(1), n(3)]);
        inc.shrink_last();
        assert_same_relation(&inc, &r);
        // Round-trip through several appends.
        inc.extend(&[n(3)]);
        inc.extend(&[n(4)]);
        inc.shrink_last();
        inc.shrink_last();
        assert_same_relation(&inc, &r);
    }

    #[test]
    fn empty_dag_reachability() {
        let r = Reachability::new(&Dag::empty());
        assert_eq!(r.node_count(), 0);
        assert_eq!(r.comparable_pairs(), 0);
    }

    #[test]
    fn long_chain_closure() {
        let k = 100;
        let edges: Vec<(usize, usize)> = (0..k - 1).map(|i| (i, i + 1)).collect();
        let d = Dag::from_edges(k, &edges).unwrap();
        let r = Reachability::new(&d);
        assert!(r.reaches(n(0), n(k - 1)));
        assert_eq!(r.descendants(n(0)).len(), k - 1);
        assert_eq!(r.comparable_pairs(), k * (k - 1) / 2);
    }
}
