//! Error type for dag construction.

/// Errors produced when building or transforming dags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint was not in `0..n`.
    NodeOutOfRange {
        /// The offending index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge `(u, u)` was supplied.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// The edge list contains a directed cycle.
    CycleDetected,
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for {n} nodes")
            }
            DagError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            DagError::CycleDetected => write!(f, "edge list contains a cycle"),
        }
    }
}

impl std::error::Error for DagError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DagError::NodeOutOfRange { node: 7, n: 3 }.to_string(),
            "node index 7 out of range for 3 nodes"
        );
        assert_eq!(DagError::SelfLoop { node: 2 }.to_string(), "self-loop at node 2");
        assert_eq!(DagError::CycleDetected.to_string(), "edge list contains a cycle");
    }
}
