//! Structural metrics of computation dags: height, width, chain covers.
//!
//! Workload shape drives every scheduling and memory experiment — fib is
//! tall and narrow, the stencil short and wide — so the experiments
//! report *height* (longest chain), *width* (largest antichain = the
//! maximum instantaneous parallelism), and the parallelism ratio.
//!
//! Width is computed exactly by Dilworth's theorem: the largest antichain
//! equals the minimum number of chains covering the poset, which is
//! `n − |maximum matching|` in the bipartite split graph of the
//! transitive closure (Fulkerson). A maximum antichain itself is
//! recovered from a König minimum vertex cover.

use crate::bitset::BitSet;
use crate::graph::{Dag, NodeId};
use crate::reach::Reachability;

/// Height: the number of nodes on a longest path (0 for the empty dag).
pub fn height(dag: &Dag) -> usize {
    let order = crate::topo::topo_sort(dag);
    let mut depth = vec![0usize; dag.node_count()];
    let mut best = 0;
    for u in order {
        let d = depth[u.index()] + 1;
        best = best.max(d);
        for &v in dag.successors(u) {
            depth[v.index()] = depth[v.index()].max(d);
        }
    }
    best
}

/// Nodes per depth level (level = longest path from a root, 0-based).
pub fn level_profile(dag: &Dag) -> Vec<usize> {
    let order = crate::topo::topo_sort(dag);
    let mut level = vec![0usize; dag.node_count()];
    for u in &order {
        for &v in dag.successors(*u) {
            level[v.index()] = level[v.index()].max(level[u.index()] + 1);
        }
    }
    let mut profile = vec![0usize; height(dag)];
    for &l in &level {
        if !profile.is_empty() {
            profile[l] += 1;
        }
    }
    profile
}

/// Kuhn's augmenting-path maximum matching on the closure's split graph.
/// `match_right[v]` = left partner of right-copy `v`.
fn max_matching(reach: &Reachability) -> Vec<Option<usize>> {
    let n = reach.node_count();
    let mut match_right: Vec<Option<usize>> = vec![None; n];
    let mut match_left: Vec<Option<usize>> = vec![None; n];
    fn try_augment(
        u: usize,
        reach: &Reachability,
        visited: &mut BitSet,
        match_right: &mut [Option<usize>],
        match_left: &mut [Option<usize>],
    ) -> bool {
        for v in reach.descendants(NodeId::new(u)).iter() {
            if visited.contains(v) {
                continue;
            }
            visited.insert(v);
            let takeable = match match_right[v] {
                None => true,
                Some(w) => try_augment(w, reach, visited, match_right, match_left),
            };
            if takeable {
                match_right[v] = Some(u);
                match_left[u] = Some(v);
                return true;
            }
        }
        false
    }
    for u in 0..n {
        let mut visited = BitSet::new(n);
        try_augment(u, reach, &mut visited, &mut match_right, &mut match_left);
    }
    match_right
}

/// A minimum chain cover of the dag's nodes (Dilworth/Fulkerson): chains
/// are vertex-disjoint paths of the *closure* (comparable runs).
pub fn min_chain_cover(dag: &Dag) -> Vec<Vec<NodeId>> {
    let n = dag.node_count();
    let reach = Reachability::new(dag);
    let match_right = max_matching(&reach);
    // next[u] = matched successor of u, if any.
    let mut next: Vec<Option<usize>> = vec![None; n];
    let mut has_pred = vec![false; n];
    for v in 0..n {
        if let Some(u) = match_right[v] {
            next[u] = Some(v);
            has_pred[v] = true;
        }
    }
    let mut chains = Vec::new();
    for (start, _) in has_pred.iter().enumerate().filter(|(_, &p)| !p) {
        let mut chain = Vec::new();
        let mut cur = Some(start);
        while let Some(u) = cur {
            chain.push(NodeId::new(u));
            cur = next[u];
        }
        chains.push(chain);
    }
    chains
}

/// Width: the size of a largest antichain (0 for the empty dag).
pub fn width(dag: &Dag) -> usize {
    if dag.is_empty() {
        return 0;
    }
    dag.node_count() - matching_size(dag)
}

fn matching_size(dag: &Dag) -> usize {
    let reach = Reachability::new(dag);
    max_matching(&reach).iter().flatten().count()
}

/// A maximum antichain, via König's vertex cover of the split graph.
pub fn max_antichain(dag: &Dag) -> Vec<NodeId> {
    let n = dag.node_count();
    if n == 0 {
        return Vec::new();
    }
    let reach = Reachability::new(dag);
    let match_right = max_matching(&reach);
    let mut match_left: Vec<Option<usize>> = vec![None; n];
    for (v, mr) in match_right.iter().enumerate() {
        if let Some(u) = *mr {
            match_left[u] = Some(v);
        }
    }
    // König: Z = unmatched-left ∪ alternating-reachable.
    let mut z_left = BitSet::new(n);
    let mut z_right = BitSet::new(n);
    let mut stack: Vec<usize> = (0..n).filter(|&u| match_left[u].is_none()).collect();
    for &u in &stack {
        z_left.insert(u);
    }
    while let Some(u) = stack.pop() {
        for v in reach.descendants(NodeId::new(u)).iter() {
            if z_right.contains(v) {
                continue;
            }
            z_right.insert(v); // via a non-matching edge
            if let Some(w) = match_right[v] {
                if !z_left.contains(w) {
                    z_left.insert(w);
                    stack.push(w);
                }
            }
        }
    }
    // Cover = (L \ Z) ∪ (R ∩ Z); antichain = nodes with NEITHER copy
    // in the cover = Z-left nodes whose right copy is not in Z.
    (0..n).filter(|&u| z_left.contains(u) && !z_right.contains(u)).map(NodeId::new).collect()
}

/// Shape summary used by the experiment reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shape {
    /// Node count.
    pub nodes: usize,
    /// Longest chain (in nodes).
    pub height: usize,
    /// Largest antichain.
    pub width: usize,
    /// `nodes / height` — the average parallelism.
    pub parallelism: f64,
}

/// Computes the [`Shape`] of a dag.
///
/// ```
/// let diamond = ccmm_dag::Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
/// let s = ccmm_dag::metrics::shape(&diamond);
/// assert_eq!((s.height, s.width), (3, 2));
/// ```
pub fn shape(dag: &Dag) -> Shape {
    let h = height(dag);
    Shape {
        nodes: dag.node_count(),
        height: h,
        width: width(dag),
        parallelism: if h == 0 { 0.0 } else { dag.node_count() as f64 / h as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn chain_metrics() {
        let d = generate::chain(6);
        assert_eq!(height(&d), 6);
        assert_eq!(width(&d), 1);
        assert_eq!(min_chain_cover(&d).len(), 1);
        assert_eq!(max_antichain(&d).len(), 1);
    }

    #[test]
    fn antichain_metrics() {
        let d = Dag::edgeless(5);
        assert_eq!(height(&d), 1);
        assert_eq!(width(&d), 5);
        assert_eq!(min_chain_cover(&d).len(), 5);
        assert_eq!(max_antichain(&d).len(), 5);
    }

    #[test]
    fn diamond_metrics() {
        let d = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(height(&d), 3);
        assert_eq!(width(&d), 2);
        let a = max_antichain(&d);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_dag_metrics() {
        let d = Dag::empty();
        assert_eq!(height(&d), 0);
        assert_eq!(width(&d), 0);
        assert!(max_antichain(&d).is_empty());
        assert!(min_chain_cover(&d).is_empty());
        assert_eq!(shape(&d).parallelism, 0.0);
    }

    #[test]
    fn fork_join_tree_width_is_leaf_count() {
        let d = generate::fork_join_tree(3);
        // Depth-3 tree: 8 leaf blocks execute in parallel.
        assert_eq!(width(&d), 8);
        assert_eq!(height(&d), 7); // root chain: 3 forks + leaf + 3 joins
    }

    #[test]
    fn level_profile_sums_to_node_count() {
        let d = generate::fork_join_tree(2);
        let p = level_profile(&d);
        assert_eq!(p.iter().sum::<usize>(), d.node_count());
        assert_eq!(p.len(), height(&d));
    }

    #[test]
    fn dilworth_invariants_on_random_dags() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..20 {
            let d = generate::gnp_dag(12, 0.25, &mut rng);
            let w = width(&d);
            let chains = min_chain_cover(&d);
            let anti = max_antichain(&d);
            let reach = Reachability::new(&d);
            // Dilworth: |max antichain| = |min chain cover|.
            assert_eq!(chains.len(), w);
            assert_eq!(anti.len(), w);
            // The antichain is an antichain.
            let set: BitSet = anti.iter().map(|u| u.index()).collect();
            let mut padded = BitSet::new(d.node_count());
            for i in set.iter() {
                padded.insert(i);
            }
            assert!(reach.is_antichain(&padded));
            // The chains partition the nodes and are chains.
            let total: usize = chains.iter().map(Vec::len).sum();
            assert_eq!(total, d.node_count());
            for chain in &chains {
                for w in chain.windows(2) {
                    assert!(reach.reaches(w[0], w[1]), "non-chain step");
                }
            }
            // Width bounds: at least the largest level, at most n.
            let lp = level_profile(&d);
            assert!(w >= lp.iter().copied().max().unwrap_or(0));
        }
    }

    #[test]
    fn shape_summary() {
        let d = generate::parallel_chains(3, 2);
        let s = shape(&d);
        assert_eq!(s.nodes, 8);
        assert_eq!(s.height, 4); // source, 2-chain, sink
        assert_eq!(s.width, 3);
        assert!((s.parallelism - 2.0).abs() < 1e-9);
    }
}
