//! Graphviz DOT export, for inspecting computations and witnesses.

use crate::graph::{Dag, NodeId};

/// Renders `dag` as a DOT digraph. `label` provides the text inside each
/// node; the default index labels are used where it returns `None`.
pub fn to_dot<F>(dag: &Dag, name: &str, mut label: F) -> String
where
    F: FnMut(NodeId) -> Option<String>,
{
    let mut out = String::new();
    out.push_str(&format!("digraph {name} {{\n"));
    out.push_str("  rankdir=LR;\n  node [shape=circle];\n");
    for u in dag.nodes() {
        let text = label(u).unwrap_or_else(|| u.to_string());
        out.push_str(&format!("  {} [label=\"{}\"];\n", u.index(), text.replace('"', "\\\"")));
    }
    for (u, v) in dag.edges() {
        out.push_str(&format!("  {} -> {};\n", u.index(), v.index()));
    }
    out.push_str("}\n");
    out
}

/// Renders `dag` with plain index labels.
pub fn to_dot_plain(dag: &Dag, name: &str) -> String {
    to_dot(dag, name, |_| None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_dot_contains_nodes_and_edges() {
        let d = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let dot = to_dot_plain(&d, "g");
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("1 -> 2;"));
        assert!(dot.contains("[label=\"n2\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn custom_labels_and_escaping() {
        let d = Dag::from_edges(1, &[]).unwrap();
        let dot = to_dot(&d, "g", |_| Some("W(\"x\")".to_string()));
        assert!(dot.contains("label=\"W(\\\"x\\\")\""));
    }
}
