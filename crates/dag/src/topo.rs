//! Topological sorts: deterministic, random, and exhaustive enumeration.
//!
//! `TS(G)`, the set of all topological sorts of a dag, is the foundation of
//! the paper's SC and LC definitions (Definitions 17 and 18). Exhaustive
//! enumeration is exponential in general — we use it only on the small
//! computations of the bounded universes — while the membership checkers in
//! `ccmm-core` avoid enumeration entirely.

use crate::bitset::BitSet;
use crate::graph::{Dag, NodeId};
use rand::Rng;

/// A deterministic topological sort (smallest ready index first).
///
/// Never fails: `Dag` is acyclic by construction.
pub fn topo_sort(dag: &Dag) -> Vec<NodeId> {
    dag.toposort_kahn().expect("Dag invariant guarantees acyclicity")
}

/// Whether `order` is a topological sort of `dag`: a permutation of the
/// nodes in which every edge goes forward.
pub fn is_topological_sort(dag: &Dag, order: &[NodeId]) -> bool {
    let n = dag.node_count();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, u) in order.iter().enumerate() {
        if u.index() >= n || pos[u.index()] != usize::MAX {
            return false;
        }
        pos[u.index()] = i;
    }
    dag.edges().all(|(u, v)| pos[u.index()] < pos[v.index()])
}

/// A random topological sort, drawn by repeatedly picking a uniformly
/// random ready node.
///
/// Note: this is *not* uniform over `TS(G)` (uniform sampling of linear
/// extensions is hard); it is adequate for randomized testing because every
/// topological sort has nonzero probability.
pub fn random_topo_sort<R: Rng + ?Sized>(dag: &Dag, rng: &mut R) -> Vec<NodeId> {
    let n = dag.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|u| dag.in_degree(NodeId::new(u))).collect();
    let mut ready: Vec<NodeId> = dag.roots();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let i = rng.gen_range(0..ready.len());
        let u = ready.swap_remove(i);
        order.push(u);
        for &v in dag.successors(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                ready.push(v);
            }
        }
    }
    debug_assert_eq!(order.len(), n);
    order
}

/// Iterator over **all** topological sorts of a dag, in lexicographic order
/// of node indices.
///
/// The number of sorts can be `n!` (edgeless dag); callers must bound the
/// input or consume lazily.
pub struct TopoSorts<'a> {
    dag: &'a Dag,
    n: usize,
    indeg: Vec<usize>,
    /// Chosen prefix of the sort under construction.
    prefix: Vec<NodeId>,
    /// `ready[d]` = nodes available at depth `d` (sorted ascending).
    ready: Vec<Vec<NodeId>>,
    /// `choice[d]` = index into `ready[d]` currently chosen.
    choice: Vec<usize>,
    state: IterState,
}

enum IterState {
    /// Need to descend (extend the prefix) before emitting.
    Descend,
    /// Just emitted a full sort; need to backtrack.
    Backtrack,
    Done,
}

impl<'a> TopoSorts<'a> {
    /// Starts the enumeration.
    pub fn new(dag: &'a Dag) -> Self {
        let n = dag.node_count();
        let indeg: Vec<usize> = (0..n).map(|u| dag.in_degree(NodeId::new(u))).collect();
        let ready0: Vec<NodeId> = dag.roots();
        TopoSorts {
            dag,
            n,
            indeg,
            prefix: Vec::with_capacity(n),
            ready: vec![ready0],
            choice: vec![0],
            state: IterState::Descend,
        }
    }

    /// Applies the choice at the current depth: push the node, update
    /// in-degrees, and compute the next ready set.
    fn push_choice(&mut self) {
        let d = self.prefix.len();
        let u = self.ready[d][self.choice[d]];
        self.prefix.push(u);
        let mut next_ready: Vec<NodeId> =
            self.ready[d].iter().copied().filter(|&x| x != u).collect();
        for &v in self.dag.successors(u) {
            self.indeg[v.index()] -= 1;
            if self.indeg[v.index()] == 0 {
                next_ready.push(v);
            }
        }
        next_ready.sort_unstable();
        self.ready.push(next_ready);
        self.choice.push(0);
    }

    /// Undoes the last choice; returns `false` if the search space is
    /// exhausted.
    fn pop_choice(&mut self) -> bool {
        loop {
            self.ready.pop();
            self.choice.pop();
            let Some(u) = self.prefix.pop() else {
                return false;
            };
            for &v in self.dag.successors(u) {
                self.indeg[v.index()] += 1;
            }
            let d = self.prefix.len();
            self.choice[d] += 1;
            if self.choice[d] < self.ready[d].len() {
                return true;
            }
            // Exhausted all candidates at this depth; keep unwinding.
        }
    }
}

impl Iterator for TopoSorts<'_> {
    type Item = Vec<NodeId>;

    fn next(&mut self) -> Option<Vec<NodeId>> {
        loop {
            match self.state {
                IterState::Done => return None,
                IterState::Backtrack => {
                    if self.pop_choice() {
                        self.state = IterState::Descend;
                    } else {
                        self.state = IterState::Done;
                        return None;
                    }
                }
                IterState::Descend => {
                    while self.prefix.len() < self.n {
                        self.push_choice();
                    }
                    self.state = IterState::Backtrack;
                    return Some(self.prefix.clone());
                }
            }
        }
    }
}

/// Calls `f` with every topological sort of `dag`, in the same
/// lexicographic order as [`TopoSorts`], through one reused buffer: unlike
/// the iterator, no `Vec` is allocated per sort, which matters to the
/// brute-force oracles that enumerate `TS(G)` per `(C, Φ)` pair. The slice
/// is only valid for the duration of the call; return `Break` to stop.
pub fn for_each_topo_sort<F>(dag: &Dag, mut f: F) -> std::ops::ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> std::ops::ControlFlow<()>,
{
    fn rec<F>(
        dag: &Dag,
        indeg: &mut [usize],
        placed: &mut [bool],
        prefix: &mut Vec<NodeId>,
        f: &mut F,
    ) -> std::ops::ControlFlow<()>
    where
        F: FnMut(&[NodeId]) -> std::ops::ControlFlow<()>,
    {
        let n = indeg.len();
        if prefix.len() == n {
            return f(prefix);
        }
        for u in 0..n {
            if placed[u] || indeg[u] != 0 {
                continue;
            }
            placed[u] = true;
            prefix.push(NodeId::new(u));
            for &v in dag.successors(NodeId::new(u)) {
                indeg[v.index()] -= 1;
            }
            let flow = rec(dag, indeg, placed, prefix, f);
            for &v in dag.successors(NodeId::new(u)) {
                indeg[v.index()] += 1;
            }
            prefix.pop();
            placed[u] = false;
            flow?;
        }
        std::ops::ControlFlow::Continue(())
    }
    let n = dag.node_count();
    let mut indeg: Vec<usize> = (0..n).map(|u| dag.in_degree(NodeId::new(u))).collect();
    let mut placed = vec![false; n];
    let mut prefix = Vec::with_capacity(n);
    rec(dag, &mut indeg, &mut placed, &mut prefix, &mut f)
}

/// All topological sorts, collected. Intended for small dags only.
pub fn all_topo_sorts(dag: &Dag) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let _ = for_each_topo_sort(dag, |t| {
        out.push(t.to_vec());
        std::ops::ControlFlow::Continue(())
    });
    out
}

/// The number of topological sorts (linear extensions) of `dag`.
///
/// Counts by exhaustive enumeration; exponential in general. Prefer
/// [`count_topo_sorts_dp`], which is exponential only in the number of
/// reachable *downsets* (far fewer than sorts on most dags).
pub fn count_topo_sorts(dag: &Dag) -> usize {
    let mut count = 0;
    let _ = for_each_topo_sort(dag, |_| {
        count += 1;
        std::ops::ControlFlow::Continue(())
    });
    count
}

/// Downset dynamic program over prefixes: `count(D)` = number of linear
/// extensions of the subposet `D` (a downward-closed node set), computed
/// as `Σ count(D − m)` over maximal elements `m` of `D`, memoised.
fn downset_counts(dag: &Dag) -> std::collections::HashMap<BitSet, u128> {
    let n = dag.node_count();
    let mut memo: std::collections::HashMap<BitSet, u128> = std::collections::HashMap::new();
    memo.insert(BitSet::new(n), 1);
    fn count(d: &BitSet, dag: &Dag, memo: &mut std::collections::HashMap<BitSet, u128>) -> u128 {
        if let Some(&c) = memo.get(d) {
            return c;
        }
        // Maximal elements of d: members none of whose successors are in d.
        let mut total = 0u128;
        for m in d.iter() {
            let maximal = dag.successors(NodeId::new(m)).iter().all(|s| !d.contains(s.index()));
            if maximal {
                let mut smaller = d.clone();
                smaller.remove(m);
                total += count(&smaller, dag, memo);
            }
        }
        memo.insert(d.clone(), total);
        total
    }
    let full = BitSet::full(n);
    count(&full, dag, &mut memo);
    memo
}

/// The number of linear extensions, by the downset dynamic program.
///
/// Exact (in `u128`); memory proportional to the number of downsets —
/// fine for the narrow dags of real workloads, exponential on wide
/// antichains (counting linear extensions is #P-complete in general).
pub fn count_topo_sorts_dp(dag: &Dag) -> u128 {
    if dag.is_empty() {
        return 1;
    }
    let memo = downset_counts(dag);
    memo[&BitSet::full(dag.node_count())]
}

/// A **uniformly random** topological sort, sampled via the downset
/// counts: at each step pick ready node `m` with probability
/// `count(D − m) / count(D)`.
///
/// Contrast with [`random_topo_sort`], which is cheap but biased.
pub fn uniform_topo_sort<R: Rng + ?Sized>(dag: &Dag, rng: &mut R) -> Vec<NodeId> {
    let n = dag.node_count();
    let memo = downset_counts(dag);
    let mut d = BitSet::full(n);
    let mut rev = Vec::with_capacity(n);
    while !d.is_empty() {
        let total = memo[&d];
        let mut draw = rng.gen_range(0..total);
        let mut picked = None;
        for m in d.iter() {
            let maximal = dag.successors(NodeId::new(m)).iter().all(|s| !d.contains(s.index()));
            if !maximal {
                continue;
            }
            let mut smaller = d.clone();
            smaller.remove(m);
            let c = memo[&smaller];
            if draw < c {
                picked = Some(m);
                break;
            }
            draw -= c;
        }
        let m = picked.expect("counts partition the draw space");
        rev.push(NodeId::new(m));
        d.remove(m);
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn topo_sort_of_chain() {
        let d = Dag::from_edges(3, &[(2, 1), (1, 0)]).unwrap();
        assert_eq!(topo_sort(&d), vec![n(2), n(1), n(0)]);
    }

    #[test]
    fn is_topological_sort_checks() {
        let d = Dag::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(is_topological_sort(&d, &[n(0), n(1), n(2)]));
        assert!(!is_topological_sort(&d, &[n(1), n(0), n(2)]));
        assert!(!is_topological_sort(&d, &[n(0), n(1)]), "wrong length");
        assert!(!is_topological_sort(&d, &[n(0), n(0), n(2)]), "repeat");
    }

    #[test]
    fn all_sorts_of_edgeless_3_is_all_permutations() {
        let d = Dag::edgeless(3);
        let sorts = all_topo_sorts(&d);
        assert_eq!(sorts.len(), 6);
        // Lexicographic order of node indices.
        assert_eq!(sorts[0], vec![n(0), n(1), n(2)]);
        assert_eq!(sorts[5], vec![n(2), n(1), n(0)]);
        // All distinct.
        let set: std::collections::HashSet<_> = sorts.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn all_sorts_of_diamond() {
        let d = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let sorts = all_topo_sorts(&d);
        assert_eq!(sorts, vec![vec![n(0), n(1), n(2), n(3)], vec![n(0), n(2), n(1), n(3)],]);
    }

    #[test]
    fn all_sorts_of_chain_is_single() {
        let edges: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 1)).collect();
        let d = Dag::from_edges(6, &edges).unwrap();
        assert_eq!(count_topo_sorts(&d), 1);
    }

    #[test]
    fn all_sorts_of_empty_dag() {
        let d = Dag::empty();
        let sorts = all_topo_sorts(&d);
        assert_eq!(sorts, vec![Vec::<NodeId>::new()]);
    }

    #[test]
    fn every_enumerated_sort_is_valid() {
        let d = Dag::from_edges(5, &[(0, 2), (1, 2), (2, 4), (3, 4)]).unwrap();
        let sorts = all_topo_sorts(&d);
        assert!(!sorts.is_empty());
        for s in &sorts {
            assert!(is_topological_sort(&d, s), "invalid sort {s:?}");
        }
        // Distinctness.
        let set: std::collections::HashSet<_> = sorts.iter().collect();
        assert_eq!(set.len(), sorts.len());
    }

    #[test]
    fn for_each_matches_iterator_order_exactly() {
        let d = Dag::from_edges(5, &[(0, 2), (1, 2), (2, 4), (3, 4)]).unwrap();
        let mut streamed = Vec::new();
        let flow = for_each_topo_sort(&d, |t| {
            streamed.push(t.to_vec());
            std::ops::ControlFlow::Continue(())
        });
        assert!(flow.is_continue());
        assert_eq!(streamed, TopoSorts::new(&d).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_early_exit() {
        let d = Dag::edgeless(4);
        let mut seen = 0;
        let flow = for_each_topo_sort(&d, |_| {
            seen += 1;
            if seen == 3 {
                std::ops::ControlFlow::Break(())
            } else {
                std::ops::ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(seen, 3);
    }

    #[test]
    fn for_each_on_empty_dag_yields_one_empty_sort() {
        let mut seen = Vec::new();
        let _ = for_each_topo_sort(&Dag::empty(), |t| {
            seen.push(t.to_vec());
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(seen, vec![Vec::<NodeId>::new()]);
    }

    #[test]
    fn count_matches_known_formula_for_two_chains() {
        // Two independent chains of length 2 and 3: count = C(5,2) = 10.
        let d = Dag::from_edges(5, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        assert_eq!(count_topo_sorts(&d), 10);
    }

    #[test]
    fn random_topo_sort_is_valid() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let d = Dag::from_edges(6, &[(0, 3), (1, 3), (2, 4), (3, 5), (4, 5)]).unwrap();
        for _ in 0..50 {
            let t = random_topo_sort(&d, &mut rng);
            assert!(is_topological_sort(&d, &t));
        }
    }

    #[test]
    fn random_topo_sort_reaches_multiple_orders() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let d = Dag::edgeless(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(random_topo_sort(&d, &mut rng));
        }
        assert!(seen.len() > 10, "only saw {} orders", seen.len());
    }
}

#[cfg(test)]
mod dp_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dp_count_matches_enumeration() {
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(91);
        for _ in 0..20 {
            let d = crate::generate::gnp_dag(7, 0.3, &mut rng);
            assert_eq!(
                count_topo_sorts_dp(&d),
                count_topo_sorts(&d) as u128,
                "DP disagrees with enumeration on {d:?}"
            );
        }
        assert_eq!(count_topo_sorts_dp(&Dag::empty()), 1);
        assert_eq!(count_topo_sorts_dp(&Dag::edgeless(10)), 3_628_800);
    }

    #[test]
    fn dp_handles_sizes_enumeration_cannot() {
        // 2 chains of 15: C(30,15) extensions — enumeration would take
        // 155 million steps; the DP is instant.
        let mut edges = Vec::new();
        for i in 0..14 {
            edges.push((i, i + 1));
            edges.push((15 + i, 16 + i));
        }
        let d = Dag::from_edges(30, &edges).unwrap();
        assert_eq!(count_topo_sorts_dp(&d), 155_117_520);
    }

    #[test]
    fn uniform_sort_is_valid_and_uniform_on_small_dag() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(92);
        // Diamond: exactly two sorts; the uniform sampler should split
        // roughly evenly (the greedy sampler would too here, but the DP
        // guarantees it).
        let d = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..400 {
            let t = uniform_topo_sort(&d, &mut rng);
            assert!(is_topological_sort(&d, &t));
            *counts.entry(t).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 2);
        for (_, c) in counts {
            assert!((120..=280).contains(&c), "skewed: {c}");
        }
    }

    #[test]
    fn uniform_sampler_corrects_greedy_bias() {
        // The "broom": source -> {a, b}, a -> long chain. Greedy picks a/b
        // 50:50 at step 2, but most extensions start with b late...
        // Compare first-node-after-source frequencies against exact
        // proportions. Dag: 0 -> 1, 0 -> 2, 1 -> 3 -> 4 -> 5.
        let d = Dag::from_edges(6, &[(0, 1), (0, 2), (1, 3), (3, 4), (4, 5)]).unwrap();
        // Extensions: node 2 can sit in any of 5 positions after 0:
        // total = 5; those starting 0,1 are 4 of 5 (node 2 after 1).
        assert_eq!(count_topo_sorts_dp(&d), 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(93);
        let mut second_is_1 = 0;
        let n_samples = 1000;
        for _ in 0..n_samples {
            let t = uniform_topo_sort(&d, &mut rng);
            if t[1] == NodeId::new(1) {
                second_is_1 += 1;
            }
        }
        // Uniform: P(second = 1) = 4/5 = 0.8. Greedy would give 0.5.
        let frac = second_is_1 as f64 / n_samples as f64;
        assert!((0.75..=0.85).contains(&frac), "got {frac}, expected ≈0.8");
    }
}
