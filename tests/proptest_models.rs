//! Property-based tests: the optimized model checkers agree with their
//! brute-force twins, the hierarchy holds, and executions verify — on
//! randomly generated computations and observer functions.

use ccmm::core::enumerate::for_each_observer;
use ccmm::core::last_writer::last_writer_function;
use ccmm::core::model::brute::{lc_brute, qdag_brute, sc_brute};
use ccmm::core::model::dagcons::{NnPred, NwPred, QPredicate, WnPred, WwPred};
use ccmm::core::{Computation, Lc, Location, MemoryModel, Model, Nn, ObserverFunction, Op, Sc};
use ccmm::dag::{topo, Dag, NodeId};
use proptest::prelude::*;
use std::ops::ControlFlow;

/// Builds a computation from an upper-triangular edge mask and op codes.
fn make_computation(n: usize, edge_bits: &[bool], op_codes: &[u8], locs: usize) -> Computation {
    let mut edges = Vec::new();
    let mut k = 0;
    for i in 0..n {
        for j in i + 1..n {
            if edge_bits[k] {
                edges.push((i, j));
            }
            k += 1;
        }
    }
    let ops: Vec<Op> = op_codes
        .iter()
        .map(|&code| match code as usize % (1 + 2 * locs) {
            0 => Op::Nop,
            c if c % 2 == 1 => Op::Read(Location::new((c - 1) / 2)),
            c => Op::Write(Location::new(c / 2 - 1)),
        })
        .collect();
    let dag = Dag::from_edges(n, &edges).expect("forward edges");
    Computation::new(dag, ops).expect("op count")
}

/// Derives an arbitrary *valid* observer function from per-slot selector
/// bytes (writes stay self-observing; other slots pick among candidates).
fn make_observer(c: &Computation, selectors: &[u8]) -> ObserverFunction {
    let mut phi = ObserverFunction::base(c);
    let mut k = 0;
    for l in c.locations() {
        for u in c.nodes() {
            if c.op(u).is_write_to(l) {
                continue;
            }
            let mut cands: Vec<Option<NodeId>> = vec![None];
            for &w in c.writes_to(l) {
                if !c.precedes(u, w) {
                    cands.push(Some(w));
                }
            }
            let pick = selectors.get(k).copied().unwrap_or(0) as usize % cands.len();
            phi.set(l, u, cands[pick]);
            k += 1;
        }
    }
    phi
}

fn arb_inputs(max_n: usize) -> impl Strategy<Value = (usize, Vec<bool>, Vec<u8>, Vec<u8>, usize)> {
    (2..=max_n).prop_flat_map(|n| {
        let pairs = n * (n - 1) / 2;
        (
            Just(n),
            proptest::collection::vec(any::<bool>(), pairs),
            proptest::collection::vec(any::<u8>(), n),
            proptest::collection::vec(any::<u8>(), 2 * n),
            1..=2usize,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_observers_are_valid((n, eb, oc, sel, locs) in arb_inputs(6)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        prop_assert!(phi.is_valid_for(&c));
    }

    #[test]
    fn lc_checker_agrees_with_brute_force((n, eb, oc, sel, locs) in arb_inputs(5)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        prop_assert_eq!(Lc.contains(&c, &phi), lc_brute(&c, &phi));
    }

    #[test]
    fn sc_checker_agrees_with_brute_force((n, eb, oc, sel, locs) in arb_inputs(5)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        prop_assert_eq!(Sc.contains(&c, &phi), sc_brute(&c, &phi));
    }

    #[test]
    fn qdag_checkers_agree_with_brute_force((n, eb, oc, sel, locs) in arb_inputs(5)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        prop_assert_eq!(
            Model::Nn.contains(&c, &phi),
            qdag_brute(&c, &phi, NnPred::holds)
        );
        prop_assert_eq!(
            Model::Nw.contains(&c, &phi),
            qdag_brute(&c, &phi, NwPred::holds)
        );
        prop_assert_eq!(
            Model::Wn.contains(&c, &phi),
            qdag_brute(&c, &phi, WnPred::holds)
        );
        prop_assert_eq!(
            Model::Ww.contains(&c, &phi),
            qdag_brute(&c, &phi, WwPred::holds)
        );
    }

    #[test]
    fn hierarchy_chain_on_random_pairs((n, eb, oc, sel, locs) in arb_inputs(7)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        let chain = [
            (Model::Sc, Model::Lc),
            (Model::Lc, Model::Nn),
            (Model::Nn, Model::Nw),
            (Model::Nn, Model::Wn),
            (Model::Nw, Model::Ww),
            (Model::Wn, Model::Ww),
        ];
        for (strong, weak) in chain {
            prop_assert!(
                !strong.contains(&c, &phi) || weak.contains(&c, &phi),
                "{} ⊆ {} violated", strong, weak
            );
        }
    }

    #[test]
    fn last_writer_in_every_model((n, eb, oc, _sel, locs) in arb_inputs(7), seed in any::<u64>()) {
        let c = make_computation(n, &eb, &oc, locs);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = topo::random_topo_sort(c.dag(), &mut rng);
        let phi = last_writer_function(&c, &t);
        for m in Model::ALL {
            prop_assert!(m.contains(&c, &phi), "{} rejects W_T", m);
        }
    }

    #[test]
    fn monotonicity_under_single_edge_removal((n, eb, oc, sel, locs) in arb_inputs(5)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        let edges: Vec<_> = c.dag().edges().collect();
        for &(a, b) in &edges {
            let relaxed = c.without_edge(a, b).unwrap();
            for m in Model::ALL {
                if m.contains(&c, &phi) {
                    prop_assert!(
                        m.contains(&relaxed, &phi),
                        "{} not monotonic at edge {}->{}", m, a, b
                    );
                }
            }
        }
    }

    #[test]
    fn backer_sim_always_lc((n, eb, oc, _sel, locs) in arb_inputs(8), seed in any::<u64>(), procs in 1..4usize, cap in 1..4usize) {
        use ccmm::backer::{sim, BackerConfig, Schedule};
        use rand::SeedableRng;
        let c = make_computation(n, &eb, &oc, locs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = Schedule::random(&c, procs, &mut rng);
        let r = sim::run(&c, &s, &BackerConfig::with_processors(procs).cache_capacity(cap));
        prop_assert!(r.observer.is_valid_for(&c));
        prop_assert!(Lc.contains(&c, &r.observer), "BACKER left LC on {:?}", c);
    }

    #[test]
    fn sc_witness_reproduces_phi((n, eb, oc, sel, locs) in arb_inputs(5)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        if let Some(t) = Sc::witness(&c, &phi) {
            prop_assert!(topo::is_topological_sort(c.dag(), &t));
            prop_assert_eq!(last_writer_function(&c, &t), phi);
        }
    }

    #[test]
    fn lc_witness_reproduces_phi_per_location((n, eb, oc, sel, locs) in arb_inputs(5)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        if let Some(ts) = Lc::witness(&c, &phi) {
            for (li, t) in ts.iter().enumerate() {
                prop_assert!(topo::is_topological_sort(c.dag(), t));
                let wt = last_writer_function(&c, t);
                for u in c.nodes() {
                    prop_assert_eq!(
                        wt.get(Location::new(li), u),
                        phi.get(Location::new(li), u)
                    );
                }
            }
        }
    }

    #[test]
    fn observer_enumeration_covers_generated_ones((n, eb, oc, sel, _) in arb_inputs(4)) {
        let c = make_computation(n, &eb, &oc, 1);
        let phi = make_observer(&c, &sel);
        let mut found = false;
        let _ = for_each_observer(&c, |p| {
            if *p == phi {
                found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        prop_assert!(found, "enumeration missed a valid observer");
    }

    #[test]
    fn nn_members_survive_augmentation_or_are_fig4_like((n, eb, oc, sel, _) in arb_inputs(4)) {
        // Not all NN pairs extend (Figure 4!), but all LC pairs must.
        use ccmm::core::props::any_extension;
        let c = make_computation(n, &eb, &oc, 1);
        let phi = make_observer(&c, &sel);
        if Lc.contains(&c, &phi) {
            for op in [Op::Nop, Op::Read(Location::new(0)), Op::Write(Location::new(0))] {
                let aug = c.augment(op);
                prop_assert!(
                    any_extension(&aug, &phi, |p| Lc.contains(&aug, p)),
                    "LC failed to extend (contradicts Theorem 19)"
                );
            }
        }
    }

    #[test]
    fn nn_find_violation_is_sound((n, eb, oc, sel, locs) in arb_inputs(6)) {
        let c = make_computation(n, &eb, &oc, locs);
        let phi = make_observer(&c, &sel);
        if let Some((l, u, v, w)) = Nn::find_violation(&c, &phi) {
            // The reported triple really is a violation.
            let phi_u = u.and_then(|u| phi.get(l, u));
            prop_assert_eq!(phi_u, phi.get(l, w));
            prop_assert!(phi.get(l, v) != phi.get(l, w));
            if let Some(u) = u {
                prop_assert!(c.precedes(u, v));
            }
            prop_assert!(c.precedes(v, w));
        }
    }
}
