//! Chaos soak of the serve daemon: concurrent clients vs an injected
//! fault plan, with direct model checks as the oracle.
//!
//! The server runs under `panic=1/13,drop=1/17,truncate=1/19,
//! delay=1/29:1,seed=42` — roughly one in five requests is sabotaged
//! somewhere between handling and the client. Four client threads fire
//! 250 queries each (1000+ including retries) from a fixed pair pool
//! whose verdicts are computed up front with `Model::contains`. The
//! invariants, checked at the end:
//!
//! * **Zero wrong verdicts.** Every `ok` reply's body is bit-identical
//!   to the direct checks — panics, drops, torn frames, delays, cache
//!   hits and evictions may cost retries, never correctness.
//! * **Zero crashes.** Injected handler panics come back as structured
//!   `degraded` replies; the server outlives all of them.
//! * **Zero leaked connections.** After the drain, every accepted
//!   connection has been closed.
//!
//! The fault plan is deterministic per request index and the client
//! schedule per (thread, iteration), so a failure replays from the
//! printed seed with the same fault placements.

use ccmm::client::{query_with_retries, Connection};
use ccmm::core::fault::ServeFaultPlan;
use ccmm::core::serve::{mix64, render_request, verdict_line, Reply, Request, Verb, SERVED_MODELS};
use ccmm::core::{litmus, MemoryModel, ObserverFunction};
use ccmm::serve::{spawn, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FAULT_SPEC: &str = "panic=1/13,drop=1/17,truncate=1/19,delay=1/29:1,seed=42";
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 250;

/// A query payload plus the oracle's expected verdict body.
struct Probe {
    payload: Vec<u8>,
    expected: Vec<String>,
}

/// The pair pool: every standard litmus computation with its base
/// observer, plus seeded random pairs — small enough that the
/// 64-entry cache keeps evicting under load.
fn probes(seed: u64) -> Vec<Probe> {
    let mut pairs: Vec<(ccmm::core::Computation, ObserverFunction)> = litmus::standard_tests()
        .into_iter()
        .map(|t| {
            let phi = ObserverFunction::base(&t.computation);
            (t.computation, phi)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..12 {
        let c = ccmm::conformance::sources::random_computation(&mut rng, 6, 2);
        let phi = ccmm::conformance::sources::random_observer(&mut rng, &c);
        pairs.push((c, phi));
    }
    pairs
        .into_iter()
        .map(|(c, phi)| {
            let expected =
                SERVED_MODELS.iter().map(|m| verdict_line(*m, m.contains(&c, &phi))).collect();
            let payload =
                render_request(&Request { verb: Verb::Models { c, phi }, deadline_ms: None })
                    .into_bytes();
            Probe { payload, expected }
        })
        .collect()
}

#[test]
fn chaos_soak_serves_only_correct_verdicts_and_leaks_nothing() {
    let seed = 42u64;
    println!("chaos soak: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests, fault plan {FAULT_SPEC} (seed {seed})");
    let cfg = ServeConfig {
        fault: ServeFaultPlan::from_spec(FAULT_SPEC).expect("soak fault spec parses"),
        cache_capacity: 64,
        ..ServeConfig::default()
    };
    let handle = spawn(cfg).expect("bind soak server");
    let addr = handle.addr.to_string();
    let pool = probes(seed);

    struct Tally {
        verdicts: u64,
        degraded: u64,
        no_reply: u64,
        wrong: Vec<String>,
    }
    let tallies: Vec<Tally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|tid| {
                let addr = &addr;
                let pool = &pool;
                s.spawn(move || {
                    let mut t =
                        Tally { verdicts: 0, degraded: 0, no_reply: 0, wrong: Vec::new() };
                    for i in 0..REQUESTS_PER_CLIENT {
                        let k = mix64(seed ^ ((tid as u64) << 32) ^ i as u64);
                        let probe = &pool[(k % pool.len() as u64) as usize];
                        let out = query_with_retries(addr, &probe.payload, 2_000, 8, k);
                        match out.reply {
                            Some(Reply::Ok { body, .. }) => {
                                t.verdicts += 1;
                                if body != probe.expected {
                                    t.wrong.push(format!(
                                        "client {tid} request {i}: served {body:?}, oracle says {:?}",
                                        probe.expected
                                    ));
                                }
                            }
                            // An injected handler panic surfaced as a
                            // structured reply: fine, and counted so the
                            // test proves the fault plan actually fired.
                            Some(Reply::Degraded { .. }) => t.degraded += 1,
                            Some(other) => t.wrong.push(format!(
                                "client {tid} request {i}: unexpected reply {other:?}"
                            )),
                            None => t.no_reply += 1,
                        }
                    }
                    t
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });

    let stats = handle.shutdown();
    let verdicts: u64 = tallies.iter().map(|t| t.verdicts).sum();
    let degraded: u64 = tallies.iter().map(|t| t.degraded).sum();
    let no_reply: u64 = tallies.iter().map(|t| t.no_reply).sum();
    let wrong: Vec<&String> = tallies.iter().flat_map(|t| &t.wrong).collect();
    println!(
        "soak: {} server-side requests, {verdicts} verdict replies, {degraded} degraded, \
         {no_reply} gave up; cache {}/{} hit/miss, {} evictions",
        stats.requests, stats.cache_hits, stats.cache_misses, stats.cache_evictions
    );

    assert!(wrong.is_empty(), "{} wrong verdict(s); first: {}", wrong.len(), wrong[0]);
    assert_eq!(
        verdicts + degraded + no_reply,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "every client request is accounted for"
    );
    assert!(
        stats.requests >= (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "retries on dropped/torn replies mean the server sees at least the client total, got {}",
        stats.requests
    );
    // The plan really fired: ~1/13 of served requests panic.
    assert!(degraded > 0, "injected panics must surface as degraded replies");
    assert!(stats.degraded >= degraded, "server counted its quarantined panics");
    // Eight retries against ~1/17 + ~1/19 transport faults: giving up
    // entirely should be essentially impossible.
    assert_eq!(no_reply, 0, "a client exhausted its retries");
    assert_eq!(
        stats.connections_accepted, stats.connections_closed,
        "no leaked connections after drain"
    );
    assert_eq!(stats.refused_draining, 0, "no request raced the drain in this schedule");
}

/// EXPERIMENTS.md E21: hot-vs-cold verdict-cache latency over the wire
/// for the four classic litmus shapes. Ignored by default (it is a
/// measurement, not an invariant); reproduce with
/// `cargo test --release --test serve_chaos -- --ignored e21`.
#[test]
#[ignore = "latency measurement for EXPERIMENTS.md E21, not a pass/fail invariant"]
fn e21_hot_vs_cold_cache_latency() {
    let handle = spawn(ServeConfig::default()).expect("bind");
    let mut conn = Connection::connect(&handle.addr.to_string(), 5_000).expect("connect");
    let shapes: Vec<(&str, ccmm::core::Computation)> = [
        ("MP", litmus::message_passing()),
        ("SB", litmus::store_buffering()),
        ("CoRR", litmus::coherence_rr()),
        ("IRIW", litmus::iriw()),
    ]
    .into_iter()
    .map(|(name, t)| (name, t.computation))
    .collect();
    println!("shape  cold_us  hot_median_us  hot_mean_us  (1000 hot asks each)");
    for (name, c) in shapes {
        let phi = ObserverFunction::base(&c);
        let payload = render_request(&Request { verb: Verb::Models { c, phi }, deadline_ms: None })
            .into_bytes();
        let t0 = std::time::Instant::now();
        let cold = conn.roundtrip(&payload).expect("cold ask");
        let cold_us = t0.elapsed().as_micros();
        assert!(matches!(cold, Reply::Ok { cached: false, .. }), "first ask misses");
        let mut hot_us: Vec<u128> = (0..1000)
            .map(|_| {
                let t = std::time::Instant::now();
                let r = conn.roundtrip(&payload).expect("hot ask");
                assert!(matches!(r, Reply::Ok { cached: true, .. }), "repeat asks hit");
                t.elapsed().as_micros()
            })
            .collect();
        hot_us.sort_unstable();
        let median = hot_us[hot_us.len() / 2];
        let mean = hot_us.iter().sum::<u128>() / hot_us.len() as u128;
        println!("{name:<6} {cold_us:>7} {median:>13} {mean:>11}");
    }
    drop(conn);
    let stats = handle.shutdown();
    assert_eq!(stats.connections_accepted, stats.connections_closed);
}

/// The same soak invariant, single-connection edition: a panic on one
/// request must not poison the connection for the next — no reconnect,
/// same TCP stream.
#[test]
fn injected_panics_stay_request_granular_on_one_connection() {
    let cfg = ServeConfig {
        fault: ServeFaultPlan::from_spec("panic=1/3,seed=7").expect("spec parses"),
        ..ServeConfig::default()
    };
    let handle = spawn(cfg).expect("bind");
    let mut conn = Connection::connect(&handle.addr.to_string(), 2_000).expect("connect");
    let ping = render_request(&Request { verb: Verb::Ping, deadline_ms: None });
    let (mut oks, mut degraded) = (0, 0);
    for i in 0..30 {
        match conn.roundtrip(ping.as_bytes()) {
            Ok(Reply::Ok { body, .. }) => {
                assert_eq!(body, vec!["pong".to_string()], "request {i}");
                oks += 1;
            }
            Ok(Reply::Degraded { message }) => {
                assert!(message.contains("injected"), "request {i}: {message}");
                degraded += 1;
            }
            other => panic!("request {i}: unexpected outcome {other:?}"),
        }
    }
    drop(conn);
    let stats = handle.shutdown();
    assert!(oks > 0 && degraded > 0, "both outcomes occur at 1/3: {oks} ok, {degraded} degraded");
    assert_eq!(oks + degraded, 30, "every request got a structured reply");
    assert_eq!(stats.connections_accepted, 1, "one connection served all 30 requests");
    assert_eq!(stats.connections_closed, 1);
}

/// Overload shedding is deterministic in what it promises: a shed
/// request gets the configured retry-after hint, and a client that
/// respects it eventually lands.
#[test]
fn overloaded_replies_carry_the_configured_hint_and_clear() {
    let cfg = ServeConfig {
        max_inflight: 1,
        retry_after_ms: 35,
        deadline_ms: None,
        ..ServeConfig::default()
    };
    let handle = spawn(cfg).expect("bind");
    let addr = handle.addr.to_string();
    // Hold the single slot with a slow litmus query from one thread
    // while another pings: some pings are shed with the exact hint.
    let shed_hints: Vec<u64> = std::thread::scope(|s| {
        let blocker = s.spawn({
            let addr = addr.clone();
            move || {
                let lit = render_request(&Request {
                    verb: Verb::Litmus { name: "IRIW".to_string() },
                    deadline_ms: None,
                });
                let mut conn = Connection::connect(&addr, 5_000).expect("connect");
                for _ in 0..40 {
                    conn.roundtrip(lit.as_bytes()).expect("litmus round-trip");
                }
            }
        });
        let prober = s.spawn({
            let addr = addr.clone();
            move || {
                let ping = render_request(&Request { verb: Verb::Ping, deadline_ms: None });
                let mut hints = Vec::new();
                for _ in 0..200 {
                    let mut conn = Connection::connect(&addr, 2_000).expect("connect");
                    if let Ok(Reply::Overloaded { retry_after_ms }) =
                        conn.roundtrip(ping.as_bytes())
                    {
                        hints.push(retry_after_ms);
                    }
                }
                hints
            }
        });
        blocker.join().expect("blocker");
        prober.join().expect("prober")
    });
    // With the slot held by back-to-back litmus checks, rapid-fire pings
    // must have been shed at least once — and always with the hint.
    assert!(!shed_hints.is_empty(), "admission control never fired");
    assert!(
        shed_hints.iter().all(|&h| h == 35),
        "hint is the configured retry-after: {shed_hints:?}"
    );
    // And a patient client still gets through afterwards.
    let ping = render_request(&Request { verb: Verb::Ping, deadline_ms: None });
    let out = query_with_retries(&addr, ping.as_bytes(), 2_000, 8, 1);
    assert!(
        matches!(out.reply, Some(Reply::Ok { .. })),
        "post-contention ping must land: {:?}",
        out.reply
    );
    let stats = handle.shutdown();
    assert_eq!(stats.connections_accepted, stats.connections_closed);
    assert!(stats.shed >= shed_hints.len() as u64);
}
