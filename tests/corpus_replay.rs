//! Replays the curated `corpus/` directory: every witness entry's
//! membership assertions against both the fast checkers and the oracles,
//! and the golden litmus outcome tables against freshly computed ones.
//!
//! Regenerate the golden files with `CCMM_BLESS=1 cargo test --test
//! corpus_replay` after an intentional model change; the diff then shows
//! exactly which outcomes moved.

use ccmm::conformance::corpus::{check_entry, check_golden, load_dir, render_golden};
use ccmm::core::litmus::standard_tests;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_entries_replay_cleanly() {
    let entries = load_dir(&corpus_dir()).expect("corpus directory is readable");
    assert!(entries.len() >= 7, "expected the curated corpus, found {} entries", entries.len());
    let mut failures = Vec::new();
    for e in &entries {
        failures.extend(check_entry(e));
    }
    assert!(failures.is_empty(), "corpus replay failed:\n{}", failures.join("\n"));
}

#[test]
fn corpus_covers_the_separating_witnesses() {
    let entries = load_dir(&corpus_dir()).expect("corpus directory is readable");
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    for needed in ["fig2", "fig3", "fig4", "mp", "sb", "corr", "iriw"] {
        assert!(
            names.iter().any(|n| n.to_lowercase().contains(needed)),
            "corpus is missing a {needed} entry (have: {names:?})"
        );
    }
}

#[test]
fn golden_litmus_outcomes_are_stable() {
    let bless = std::env::var("CCMM_BLESS").is_ok_and(|v| v == "1");
    let dir = corpus_dir().join("golden");
    let tests = standard_tests();
    let mut failures = Vec::new();
    for name in ["MP", "SB", "CoRR", "IRIW"] {
        let test = tests.iter().find(|t| t.name == name).expect("standard test exists");
        let path = dir.join(format!("{name}.golden"));
        if bless {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, render_golden(test)).expect("write golden");
            continue;
        }
        let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden {}: {e}; run with CCMM_BLESS=1 to create", path.display())
        });
        failures.extend(check_golden(test, &stored));
    }
    assert!(failures.is_empty(), "golden outcome drift:\n{}", failures.join("\n"));
}
