//! The conformance harness's acceptance tests: the exhaustive bound-4
//! sweep finds zero fast-vs-oracle disagreements for all six models, and
//! an intentionally seeded mutation is caught and shrunk small.

use ccmm::conformance::{self_test, HarnessConfig};
use ccmm::core::sweep::SweepConfig;
use ccmm::core::Model;

fn ci_cfg() -> HarnessConfig {
    HarnessConfig { sweep: SweepConfig::with_threads(2), ..HarnessConfig::default() }
}

#[test]
fn exhaustive_bound4_and_all_sources_report_zero_disagreements() {
    // Default config: exhaustive to 4 nodes, 200 random cases, BACKER
    // harvesting, and lock-augmented membership — every fast checker
    // must agree with its definitional oracle everywhere.
    let report = ccmm::conformance::run(&ci_cfg());
    assert!(report.exhaustive_pairs > 10_000, "bound-4 sweep looks truncated: {report}");
    assert!(report.random_pairs == 200 && report.harvested_pairs > 0 && report.lock_pairs > 0);
    let mut detail = String::new();
    for d in &report.disagreements {
        detail.push_str(&ccmm::conformance::report::render_witness(d));
    }
    assert!(report.ok(), "fast checkers diverge from the definitions:\n{report}\n{detail}");
}

#[test]
fn seeded_lc_mutation_is_caught_and_shrunk_to_at_most_six_nodes() {
    // self_test runs the harness against a deliberately broken fast
    // checker (LC answered as NN on ≥4-node computations — coherence
    // forgotten exactly where the smallest separator exists) and fails
    // unless the bug is caught AND some witness shrinks to ≤ 6 nodes.
    let report = self_test(&ci_cfg()).expect("the seeded mutation must be caught and shrunk");
    let best = report
        .disagreements
        .iter()
        .filter(|d| d.original.model == Model::Lc)
        .min_by_key(|d| d.shrunk.c.node_count())
        .expect("an LC disagreement was collected");
    assert!(
        best.shrunk.c.node_count() <= 6,
        "witness too big: {} nodes",
        best.shrunk.c.node_count()
    );
    // The minimal LC/NN separator is the 4-node Figure-4 pattern; the
    // shrinker should reach it exactly.
    assert_eq!(best.shrunk.c.node_count(), 4);
    assert_eq!(best.shrunk.c.num_locations(), 1);
}
