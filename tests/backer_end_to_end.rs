//! Integration: Cilk programs → BACKER executions → model verification.
//!
//! The pipeline the paper's research program was built around: fork/join
//! programs unfold into computations, BACKER serves their memory, and the
//! observer functions read off the executions are location consistent —
//! which for race-free programs implies determinate results.

use ccmm::backer::{sim, threads, BackerConfig, FaultInjection, Schedule};
use ccmm::core::{Computation, Lc, MemoryModel, Op};
use ccmm::dag::NodeId;
use rand::SeedableRng;

fn workloads() -> Vec<(&'static str, Computation)> {
    vec![
        ("fib(7)", ccmm::cilk::fib(7).computation),
        ("matmul(2)", ccmm::cilk::matmul(2).computation),
        ("stencil(6,3)", ccmm::cilk::stencil(6, 3).computation),
        ("reduce(9)", ccmm::cilk::reduce(9).computation),
    ]
}

/// Read results (node → observed token) of every read node.
fn read_results(
    c: &Computation,
    phi: &ccmm::core::ObserverFunction,
) -> Vec<(NodeId, Option<NodeId>)> {
    c.nodes()
        .filter_map(|u| match c.op(u) {
            Op::Read(l) => Some((u, phi.get(l, u))),
            _ => None,
        })
        .collect()
}

#[test]
fn all_workloads_simulate_to_lc() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(100);
    for (name, c) in workloads() {
        for p in [1, 2, 4] {
            for _ in 0..8 {
                let s = Schedule::work_stealing(&c, p, &mut rng);
                let r = sim::run(&c, &s, &BackerConfig::with_processors(p).cache_capacity(8));
                assert!(r.observer.is_valid_for(&c), "{name}");
                assert!(Lc.contains(&c, &r.observer), "{name} violated LC");
            }
        }
    }
}

#[test]
fn race_free_programs_are_determinate_under_backer() {
    // Serial execution fixes the intended read results; every schedule
    // must reproduce them (the raison d'être of dag consistency: race-free
    // programs get serial semantics).
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    for (name, c) in workloads() {
        let serial = sim::run(&c, &Schedule::serial(&c), &BackerConfig::default());
        let expected = read_results(&c, &serial.observer);
        for _ in 0..10 {
            let s = Schedule::random(&c, 3, &mut rng);
            let r = sim::run(&c, &s, &BackerConfig::with_processors(3).cache_capacity(4));
            assert_eq!(
                read_results(&c, &r.observer),
                expected,
                "{name}: nondeterministic read under BACKER"
            );
        }
    }
}

#[test]
fn threaded_executor_is_determinate_too() {
    for (name, c) in workloads() {
        let serial = sim::run(&c, &Schedule::serial(&c), &BackerConfig::default());
        let expected = read_results(&c, &serial.observer);
        for _ in 0..5 {
            let r = threads::run(&c, &BackerConfig::with_processors(4));
            assert_eq!(read_results(&c, &r.observer), expected, "{name}");
            assert!(Lc.contains(&c, &r.observer), "{name}");
        }
    }
}

#[test]
fn faulty_protocol_breaks_determinacy_detectably() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(102);
    let c = ccmm::cilk::stencil(8, 4).computation;
    let serial = sim::run(&c, &Schedule::serial(&c), &BackerConfig::default());
    let expected = read_results(&c, &serial.observer);
    let broken = BackerConfig::with_processors(4)
        .faults(FaultInjection { skip_flush: true, skip_reconcile: false });
    let mut wrong_reads = 0;
    let mut lc_violations = 0;
    for _ in 0..20 {
        let s = Schedule::random(&c, 4, &mut rng);
        let r = sim::run(&c, &s, &broken);
        if read_results(&c, &r.observer) != expected {
            wrong_reads += 1;
        }
        if !Lc.contains(&c, &r.observer) {
            lc_violations += 1;
        }
    }
    assert!(wrong_reads > 0, "fault should corrupt reads");
    assert!(lc_violations > 0, "fault should violate LC");
    assert!(
        lc_violations >= wrong_reads,
        "every corrupted run must also be flagged by the LC checker"
    );
}

#[test]
fn cilk_builder_to_backer_roundtrip() {
    // A hand-written program with a deliberate read-after-sync pattern.
    let c = ccmm::cilk::build_program(|b, s| {
        let l0 = ccmm::core::Location::new(0);
        let l1 = ccmm::core::Location::new(1);
        b.write(s, l0);
        b.spawn(s, |b, t| {
            b.read(t, l0);
            b.write(t, l1);
        });
        b.spawn(s, |b, t| {
            b.read(t, l0);
        });
        b.sync(s);
        b.read(s, l1);
    });
    let r = sim::run(&c, &Schedule::round_robin(&c, 2), &BackerConfig::with_processors(2));
    assert!(Lc.contains(&c, &r.observer));
    // The final read must see the spawned write (race-free chain).
    let final_read = c
        .nodes()
        .last()
        .map(|_| ())
        .and_then(|_| c.nodes().rfind(|&u| matches!(c.op(u), Op::Read(l) if l.index() == 1)));
    let fr = final_read.expect("final read exists");
    let writer = c.writes_to(ccmm::core::Location::new(1))[0];
    assert_eq!(r.observer.get(ccmm::core::Location::new(1), fr), Some(writer));
}
