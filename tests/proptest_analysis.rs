//! Property tests for the analysis layers: the text format, value-trace
//! checking, dag metrics, and lock serializations.

use ccmm::core::locks::{CriticalSection, Lock, LockedComputation};
use ccmm::core::parse::{parse_computation, parse_observer, render_computation, render_observer};
use ccmm::core::trace::{is_lc_trace, is_sc_trace, ValueTrace};
use ccmm::core::{Computation, Lc, Location, MemoryModel, Op};
use ccmm::dag::{metrics, NodeId};
use proptest::prelude::*;
use std::ops::ControlFlow;

fn make_computation(n: usize, edge_bits: &[bool], op_codes: &[u8], locs: usize) -> Computation {
    let mut edges = Vec::new();
    let mut k = 0;
    for i in 0..n {
        for j in i + 1..n {
            if edge_bits[k] {
                edges.push((i, j));
            }
            k += 1;
        }
    }
    let ops: Vec<Op> = op_codes
        .iter()
        .map(|&code| match code as usize % (1 + 2 * locs) {
            0 => Op::Nop,
            c if c % 2 == 1 => Op::Read(Location::new((c - 1) / 2)),
            c => Op::Write(Location::new(c / 2 - 1)),
        })
        .collect();
    Computation::from_edges(n, &edges, ops)
}

fn arb_inputs(max_n: usize) -> impl Strategy<Value = (usize, Vec<bool>, Vec<u8>, usize)> {
    (2..=max_n).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(any::<bool>(), n * (n - 1) / 2),
            proptest::collection::vec(any::<u8>(), n),
            1..=2usize,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_format_roundtrips((n, eb, oc, locs) in arb_inputs(8)) {
        let c = make_computation(n, &eb, &oc, locs);
        let text = render_computation(&c);
        let back = parse_computation(&text).unwrap();
        prop_assert_eq!(&back, &c);
        // Observer roundtrip via the base function with a few tweaks.
        let phi = ccmm::core::ObserverFunction::base(&c);
        let text = render_observer(&phi);
        if c.num_locations() > 0 {
            let back_phi = parse_observer(&text, &c).unwrap();
            prop_assert_eq!(back_phi, phi);
        }
    }

    #[test]
    fn last_writer_traces_verify((n, eb, oc, locs) in arb_inputs(6), seed in any::<u64>()) {
        use rand::SeedableRng;
        let c = make_computation(n, &eb, &oc, locs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = ccmm::dag::topo::random_topo_sort(c.dag(), &mut rng);
        let phi = ccmm::core::last_writer::last_writer_function(&c, &t);
        let reads: Vec<(NodeId, u64)> = c
            .nodes()
            .filter_map(|u| match c.op(u) {
                Op::Read(l) => Some((u, phi.get(l, u).map_or(0, |w| w.index() as u64 + 1))),
                _ => None,
            })
            .collect();
        let trace = ValueTrace::with_tokens(&c, reads);
        prop_assert!(is_sc_trace(&c, &trace), "last-writer trace must be SC");
        prop_assert!(is_lc_trace(&c, &trace));
    }

    #[test]
    fn sc_traces_are_lc_traces((n, eb, oc, locs) in arb_inputs(5), vals in proptest::collection::vec(0u64..4, 5)) {
        let c = make_computation(n, &eb, &oc, locs);
        let reads: Vec<(NodeId, u64)> = c
            .nodes()
            .filter(|&u| matches!(c.op(u), Op::Read(_)))
            .zip(vals.iter().copied())
            .collect();
        let trace = ValueTrace::with_tokens(&c, reads);
        if is_sc_trace(&c, &trace) {
            prop_assert!(is_lc_trace(&c, &trace), "SC ⊆ LC at trace level");
        }
    }

    #[test]
    fn mirsky_dilworth_bound((n, eb, _oc, _locs) in arb_inputs(10)) {
        let c = make_computation(n, &eb, &vec![0u8; n], 1);
        let d = c.dag();
        let h = metrics::height(d);
        let w = metrics::width(d);
        prop_assert!(h * w >= n, "n ≤ height × width violated: {} × {} < {}", h, w, n);
        prop_assert!(h <= n && w <= n);
        // The profile peak is a lower bound on width.
        let peak = metrics::level_profile(d).into_iter().max().unwrap_or(0);
        prop_assert!(w >= peak);
    }

    #[test]
    fn lock_serializations_extend_the_dag((n, eb, oc, locs) in arb_inputs(6), a in 0usize..6, b in 0usize..6) {
        check_lock_serializations_extend(n, &eb, &oc, locs, a, b);
    }

    #[test]
    fn locked_membership_implies_plain_membership((n, eb, oc, _locs) in arb_inputs(5), a in 0usize..5, b in 0usize..5) {
        // Δ monotonic: membership on the (edge-richer) serialization
        // implies membership on the plain computation.
        let c = make_computation(n, &eb, &oc, 1);
        let a = a % n;
        let mut b = b % n;
        if a == b {
            b = (b + 1) % n;
        }
        let lock = Lock(0);
        let locked = LockedComputation::new(
            c.clone(),
            vec![
                CriticalSection { lock, acquire: NodeId::new(a), release: NodeId::new(a) },
                CriticalSection { lock, acquire: NodeId::new(b), release: NodeId::new(b) },
            ],
        )
        .unwrap();
        let mut checked = 0;
        let mut violation = false;
        let _ = ccmm::core::enumerate::for_each_observer(&c, |phi| {
            if locked.contains_under(&Lc, phi) && !Lc.contains(&c, phi) {
                violation = true;
                return ControlFlow::Break(());
            }
            checked += 1;
            if checked > 200 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
        });
        prop_assert!(!violation, "monotonicity through serialization violated");
        prop_assert!(checked > 0);
    }
}

/// The property behind `lock_serializations_extend_the_dag`, shared by
/// the proptest strategy and the regression-seed replay below. Plain
/// `assert!`s so a failure aborts either caller identically.
fn check_lock_serializations_extend(
    n: usize,
    edge_bits: &[bool],
    op_codes: &[u8],
    locs: usize,
    a: usize,
    b: usize,
) {
    let c = make_computation(n, edge_bits, op_codes, locs);
    let a = a % n;
    let mut b = b % n;
    if a == b {
        // Two sections on the same node would need a self-loop edge;
        // pick a distinct node (n ≥ 2 by the strategy).
        b = (b + 1) % n;
    }
    // Use single-node critical sections at two arbitrary nodes.
    let lock = Lock(0);
    let locked = LockedComputation::new(
        c.clone(),
        vec![
            CriticalSection { lock, acquire: NodeId::new(a), release: NodeId::new(a) },
            CriticalSection { lock, acquire: NodeId::new(b), release: NodeId::new(b) },
        ],
    )
    .unwrap();
    let sers = locked.serializations();
    assert!(!sers.is_empty(), "some serialization must exist");
    for s in &sers {
        assert!(c.dag().is_relaxation_of(s.dag()), "serialization must contain the dag");
        assert_eq!(s.node_count(), c.node_count());
        if a != b {
            // The two sections are ordered one way or the other.
            assert!(
                s.precedes(NodeId::new(a), NodeId::new(b))
                    || s.precedes(NodeId::new(b), NodeId::new(a))
            );
        }
    }
}

/// One shrunk case recorded in the `.proptest-regressions` file.
#[derive(Debug, PartialEq)]
struct RecordedCase {
    n: usize,
    edge_bits: Vec<bool>,
    op_codes: Vec<u8>,
    locs: usize,
    a: usize,
    b: usize,
}

/// Parses the `# shrinks to (n, eb, oc, locs) = (...), a = X, b = Y`
/// comment of a `cc` line.
fn parse_recorded_case(comment: &str) -> Option<RecordedCase> {
    let args = comment.split_once("= (")?.1;
    let (n_str, rest) = args.split_once(',')?;
    let n = n_str.trim().parse().ok()?;
    let (eb_str, rest) = rest.trim().strip_prefix('[')?.split_once(']')?;
    let edge_bits = eb_str
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| t.trim().parse::<bool>())
        .collect::<Result<Vec<_>, _>>()
        .ok()?;
    let (oc_str, rest) =
        rest.trim().trim_start_matches(',').trim().strip_prefix('[')?.split_once(']')?;
    let op_codes = oc_str
        .split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| t.trim().parse::<u8>())
        .collect::<Result<Vec<_>, _>>()
        .ok()?;
    let (locs_str, rest) = rest.trim().trim_start_matches(',').trim().split_once(')')?;
    let locs = locs_str.trim().parse().ok()?;
    let a = rest
        .split_once("a =")?
        .1
        .trim()
        .split(|ch: char| !ch.is_ascii_digit())
        .next()?
        .parse()
        .ok()?;
    let b = rest
        .split_once("b =")?
        .1
        .trim()
        .split(|ch: char| !ch.is_ascii_digit())
        .next()?
        .parse()
        .ok()?;
    Some(RecordedCase { n, edge_bits, op_codes, locs, a, b })
}

/// The vendored proptest has no persistence layer, so the seeds in
/// `proptest_analysis.proptest-regressions` were silently NOT being
/// replayed. This test restores the guarantee the file's header
/// promises: every recorded shrunk case re-runs against the property it
/// once broke, before any novel random cases matter.
#[test]
fn recorded_regression_seeds_still_pass() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/proptest_analysis.proptest-regressions");
    let text = std::fs::read_to_string(path).expect("regression file is checked in");
    let mut replayed = 0;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with("cc ") {
            continue;
        }
        let comment = line
            .split_once('#')
            .unwrap_or_else(|| panic!("line {}: cc entry lacks its shrunk-case comment", i + 1))
            .1;
        let case = parse_recorded_case(comment)
            .unwrap_or_else(|| panic!("line {}: unparseable shrunk case `{comment}`", i + 1));
        check_lock_serializations_extend(
            case.n,
            &case.edge_bits,
            &case.op_codes,
            case.locs,
            case.a,
            case.b,
        );
        replayed += 1;
    }
    assert!(replayed >= 1, "the checked-in regression seed must be replayed");
}

#[test]
fn regression_file_parser_reads_the_recorded_shape() {
    let case = parse_recorded_case(
        " shrinks to (n, eb, oc, locs) = (4, [false, false, false, false, false, false], \
         [0, 0, 0, 0], 1), a = 5, b = 1",
    )
    .expect("parses");
    assert_eq!(
        case,
        RecordedCase {
            n: 4,
            edge_bits: vec![false; 6],
            op_codes: vec![0, 0, 0, 0],
            locs: 1,
            a: 5,
            b: 1
        }
    );
}
