//! Integration: lock-augmented computations and the online game, spanning
//! the builder (cilk), the models (core), and BACKER (backer).

use ccmm::core::locks::{CriticalSection, Lock, LockedComputation};
use ccmm::core::online::{greedy_survives, OnlineSession};
use ccmm::core::{Lc, MemoryModel, Model, Nn, Op, Sc};
use ccmm::dag::NodeId;
use std::ops::ControlFlow;

fn l(i: usize) -> ccmm::core::Location {
    ccmm::core::Location::new(i)
}

#[test]
fn locked_cilk_program_serializes_sections() {
    // Build a fork/join program whose two children form critical
    // sections on the same lock.
    let c = ccmm::cilk::build_program(|b, s| {
        b.write(s, l(0)); // 0: init
        b.spawn(s, |b, t| {
            b.read(t, l(0)); // 1
            b.write(t, l(0)); // 2
        });
        b.spawn(s, |b, t| {
            b.read(t, l(0)); // 3
            b.write(t, l(0)); // 4
        });
        b.sync(s); // 5
        b.read(s, l(0)); // 6
    });
    let locked = LockedComputation::new(
        c.clone(),
        vec![
            CriticalSection { lock: Lock(0), acquire: NodeId::new(1), release: NodeId::new(2) },
            CriticalSection { lock: Lock(0), acquire: NodeId::new(3), release: NodeId::new(4) },
        ],
    )
    .unwrap();
    assert_eq!(locked.serializations().len(), 2);

    // Under locked LC, the final read must see the LAST section's write,
    // and the second section's read must see the first's write: exactly
    // two observation patterns survive (one per section order).
    let mut survivors = Vec::new();
    let _ = ccmm::core::enumerate::for_each_observer(&c, |phi| {
        if locked.contains_under(&Lc, phi) {
            survivors.push((
                phi.get(l(0), NodeId::new(1)),
                phi.get(l(0), NodeId::new(3)),
                phi.get(l(0), NodeId::new(6)),
            ));
        }
        ControlFlow::Continue(())
    });
    survivors.sort();
    survivors.dedup();
    assert_eq!(
        survivors,
        vec![
            // A then B: r1 sees init, r3 sees A's write, final sees B's.
            (Some(NodeId::new(0)), Some(NodeId::new(2)), Some(NodeId::new(4))),
            // B then A.
            (Some(NodeId::new(4)), Some(NodeId::new(0)), Some(NodeId::new(2))),
        ]
    );
}

#[test]
fn unlocked_version_admits_lost_updates() {
    let c = ccmm::cilk::build_program(|b, s| {
        b.write(s, l(0));
        b.spawn(s, |b, t| {
            b.read(t, l(0));
            b.write(t, l(0));
        });
        b.spawn(s, |b, t| {
            b.read(t, l(0));
            b.write(t, l(0));
        });
        b.sync(s);
        b.read(s, l(0));
    });
    // Both increments read the initial write: a lost update, admitted by
    // plain LC because the sections race.
    let mut lost_update_seen = false;
    let _ = ccmm::core::enumerate::for_each_observer(&c, |phi| {
        if Lc.contains(&c, phi)
            && phi.get(l(0), NodeId::new(1)) == Some(NodeId::new(0))
            && phi.get(l(0), NodeId::new(3)) == Some(NodeId::new(0))
        {
            lost_update_seen = true;
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    });
    assert!(lost_update_seen);
    // And the race detector flags exactly this danger.
    assert!(!ccmm::cilk::race::is_race_free(&c));
}

#[test]
fn online_game_across_model_lattice() {
    // Replay every ≤5-node single-location computation of the stencil
    // through greedy sessions: constructible models never jam.
    let c = ccmm::cilk::stencil(3, 2).computation;
    assert!(greedy_survives(Sc, &c, 0));
    assert!(greedy_survives(Lc, &c, 0));
    assert!(greedy_survives(Model::Ww, &c, 0));
}

#[test]
fn online_session_observer_always_in_model() {
    let c = ccmm::cilk::reduce(4).computation;
    let mut s = OnlineSession::new(Nn::default(), c.num_locations());
    for u in c.nodes() {
        let preds: Vec<NodeId> = c.dag().predecessors(u).to_vec();
        if s.reveal(&preds, c.op(u)).is_err() {
            panic!("greedy NN jammed on the race-free reduce program");
        }
        assert!(Nn::default().contains(s.computation(), s.observer()));
    }
    assert_eq!(s.computation().node_count(), c.node_count());
}

#[test]
fn race_free_workloads_have_deterministic_online_reads() {
    // Race-free ⇒ every membership-preserving online play gives reads
    // their unique determinate values.
    let p = ccmm::cilk::fib(4);
    let c = &p.computation;
    let expected = ccmm::cilk::race::determinate_reads(c);
    let mut s = OnlineSession::new(Lc, c.num_locations());
    for u in c.nodes() {
        let preds: Vec<NodeId> = c.dag().predecessors(u).to_vec();
        s.reveal(&preds, c.op(u)).expect("LC never jams");
    }
    for (r, want) in expected {
        let loc = match c.op(r) {
            Op::Read(l) => l,
            _ => unreachable!(),
        };
        assert_eq!(s.observer().get(loc, r), want, "read {r}");
    }
}

#[test]
fn constructible_models_never_jam_on_any_reveal_order() {
    // Property (Theorems 10 and 19): SC and LC are constructible, so a
    // greedy online player survives *any* adversary — any computation,
    // revealed in any topological order. Random computations are drawn
    // from the conformance generator and each is replayed in several
    // random linear extensions; nodes are renumbered to arrival order,
    // which is what OnlineSession expects.
    use ccmm::conformance::sources::random_computation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(2024);
    for case in 0..25 {
        let c = random_computation(&mut rng, 6, 2);
        for _ in 0..3 {
            // A random linear extension: repeatedly pick a ready node.
            let n = c.node_count();
            let mut placed: Vec<NodeId> = Vec::with_capacity(n);
            let mut position = vec![usize::MAX; n];
            while placed.len() < n {
                let ready: Vec<NodeId> = c
                    .nodes()
                    .filter(|&u| {
                        position[u.index()] == usize::MAX
                            && c.dag()
                                .predecessors(u)
                                .iter()
                                .all(|p| position[p.index()] != usize::MAX)
                    })
                    .collect();
                let pick = ready[rng.gen_range(0..ready.len())];
                position[pick.index()] = placed.len();
                placed.push(pick);
            }
            for model in [Model::Sc, Model::Lc] {
                let mut s = OnlineSession::new(model, c.num_locations());
                for &u in &placed {
                    let preds: Vec<NodeId> = c
                        .dag()
                        .predecessors(u)
                        .iter()
                        .map(|p| NodeId::new(position[p.index()]))
                        .collect();
                    s.reveal(&preds, c.op(u)).unwrap_or_else(|stuck| {
                        panic!(
                            "{model} jammed on case {case}, reveal order {placed:?}, \
                             at op {:?} — constructible models must never jam\n{:?}",
                            stuck.op, c
                        )
                    });
                }
                assert_eq!(s.computation().node_count(), n);
                assert!(model.contains(s.computation(), s.observer()));
            }
        }
    }
}

#[test]
fn greedy_nn_jam_on_figure_4_is_still_reproducible() {
    // Regression pin for the online face of Theorem 25 (NN is not
    // constructible): a membership-preserving but short-sighted NN
    // player that makes the crosswise Figure-4 choices reaches a state
    // with no future, and the very next joint read jams the session.
    let a = NodeId::new(0);
    let b = NodeId::new(1);
    let mut s = OnlineSession::new(Nn::default(), 1);
    s.reveal(&[], Op::Write(l(0))).expect("A places");
    s.reveal(&[], Op::Write(l(0))).expect("B places");
    s.reveal_choose(&[a, b], Op::Read(l(0)), |cands| {
        cands.iter().position(|p| p.get(l(0), NodeId::new(2)) == Some(a)).expect("C can observe A")
    })
    .expect("C places");
    s.reveal_choose(&[a, b], Op::Read(l(0)), |cands| {
        cands.iter().position(|p| p.get(l(0), NodeId::new(3)) == Some(b)).expect("D can observe B")
    })
    .expect("D places");
    // The session state is exactly the corpus's Figure-4 witness: in NN,
    // out of LC — the constructible core has been left.
    assert!(Nn::default().contains(s.computation(), s.observer()));
    assert!(!Lc.contains(s.computation(), s.observer()));
    let stuck = s
        .reveal(&[NodeId::new(2), NodeId::new(3)], Op::Read(l(0)))
        .expect_err("the joint read after the crossing must jam");
    assert_eq!(stuck.computation.node_count(), 5);
    // Lookahead-1 greedy play refuses the trap outright on the full dag.
    let full = ccmm::core::witness::figure4_full(Op::Read(l(0)));
    assert!(greedy_survives(Lc, &full, 0), "LC survives the same reveals");
    assert!(greedy_survives(Nn::default(), &full, 1), "lookahead dodges the corner");
}
