//! Differential tests pinning the incremental paths to their batch
//! twins: `Reachability::extend` against full rebuilds (random DAGs and
//! harvested Cilk trace prefixes), greedy `OnlineSession` replay against
//! the exact membership checkers, and the streaming LC/SC verdicts
//! against the batch checkers on completed race-free traces.

use ccmm::backer::{BackerConfig, FaultInjection, StreamRunner};
use ccmm::cilk::{fib_trace, matmul_trace, stencil_trace, RawTrace};
use ccmm::core::last_writer::last_writer_function;
use ccmm::core::online::OnlineSession;
use ccmm::core::{Computation, Lc, MemoryModel, Sc, StreamChecker};
use ccmm::dag::{Dag, NodeId, Reachability};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Asserts the incremental closure equals a fresh rebuild on all pairs.
fn assert_reach_equal(inc: &Reachability, batch: &Reachability, n: usize, ctx: &str) {
    for u in 0..n {
        for v in 0..n {
            assert_eq!(
                inc.reaches(NodeId::new(u), NodeId::new(v)),
                batch.reaches(NodeId::new(u), NodeId::new(v)),
                "{ctx}: reaches({u}, {v}) diverged at n={n}"
            );
        }
    }
}

/// Grows a dag node by node from pred bitmasks, comparing the
/// incrementally extended closure against a rebuild after *every*
/// append.
fn check_incremental_growth(pred_masks: &[u64], ctx: &str) {
    let empty = Dag::from_edges(0, &[]).expect("empty dag");
    let mut inc = Reachability::new(&empty);
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, mask) in pred_masks.iter().enumerate() {
        let preds: Vec<NodeId> =
            (0..i).filter(|j| mask & (1 << (j % 64)) != 0).map(NodeId::new).collect();
        let new = inc.extend(&preds);
        assert_eq!(new.index(), i);
        edges.extend(preds.iter().map(|p| (p.index(), i)));
        let dag = Dag::from_edges(i + 1, &edges).expect("forward edges");
        let batch = Reachability::new(&dag);
        assert_reach_equal(&inc, &batch, i + 1, ctx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reach_extend_matches_rebuild_on_random_dags(
        masks in proptest::collection::vec(any::<u64>(), 0..12)
    ) {
        check_incremental_growth(&masks, "random");
    }

    /// Greedy online play for the constructible, complete models SC and
    /// LC never jams on small computations (Theorem 19's argument), and
    /// the observer it commits is a genuine member of the model — the
    /// streaming verdict equals `contains` on the final pair.
    #[test]
    fn online_replay_verdict_matches_batch_membership(
        seed in any::<u64>(),
        n in 1usize..=5,
        locs in 1usize..=2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = ccmm::conformance::sources::random_computation(&mut rng, n, locs);

        let sc_phi = OnlineSession::new(Sc, c.num_locations())
            .replay(&c)
            .expect("SC is constructible and complete: greedy never jams");
        prop_assert!(Sc.contains(&c, &sc_phi), "replayed SC observer must be an SC member");

        let lc_phi = OnlineSession::new(Lc, c.num_locations())
            .replay(&c)
            .expect("LC is constructible and complete: greedy never jams");
        prop_assert!(Lc.contains(&c, &lc_phi), "replayed LC observer must be an LC member");
    }
}

/// `Reachability::extend` against rebuilds over harvested Cilk trace
/// prefixes — the exact growth pattern `OnlineSession` and `ccmm watch`
/// feed it (spawn fans, sync joins, long series chains).
#[test]
fn reach_extend_matches_rebuild_on_harvested_trace_prefixes() {
    for (trace, name) in [
        (fib_trace(7), "fib:7"),
        (stencil_trace(4, 3), "stencil:4,3"),
        (matmul_trace(2), "matmul:2"),
    ] {
        let n = trace.node_count();
        let empty = Dag::from_edges(0, &[]).expect("empty dag");
        let mut inc = Reachability::new(&empty);
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            let preds = trace.dag.predecessors(NodeId::new(i)).to_vec();
            inc.extend(&preds);
            edges.extend(preds.iter().map(|p| (p.index(), i)));
            // Full-matrix compare every 16 appends (and at the end):
            // every-step compares are cubic in trace length.
            if (i + 1) % 16 == 0 || i + 1 == n {
                let dag = Dag::from_edges(i + 1, &edges).expect("forward edges");
                assert_reach_equal(&inc, &Reachability::new(&dag), i + 1, name);
            }
        }
    }
}

/// The completed pair a streamed run decides: streamed observations over
/// the commit-order last-writer completion.
fn completed_pair(
    trace: &RawTrace,
    obs: &[Option<NodeId>],
) -> (Computation, ccmm::core::ObserverFunction) {
    let c = trace.to_computation();
    let order: Vec<NodeId> = (0..c.node_count()).map(NodeId::new).collect();
    let mut phi = last_writer_function(&c, &order);
    for (u, &o) in obs.iter().enumerate().take(c.node_count()) {
        if let Some(l) = c.op(NodeId::new(u)).location() {
            phi.set(l, NodeId::new(u), o);
        }
    }
    (c, phi)
}

/// Streaming membership verdicts equal the batch checkers on completed
/// race-free traces — the exactness argument of `ccmm_core::stream`,
/// exercised end-to-end through the lean BACKER runner under protocol
/// pressure (small caches, multiple procs) and under injected faults.
#[test]
fn streaming_verdicts_match_batch_on_race_free_traces() {
    let faults = [
        FaultInjection::NONE,
        FaultInjection { skip_flush: true, skip_reconcile: false },
        FaultInjection { skip_flush: false, skip_reconcile: true },
    ];
    for make in [|| fib_trace(6), || stencil_trace(3, 2), || matmul_trace(2)] {
        for fault in faults {
            let trace = make();
            let cfg = BackerConfig::with_processors(3).cache_capacity(2).faults(fault);
            let mut runner = StreamRunner::new(trace.num_locations, &cfg, 4);
            let mut checker = StreamChecker::new(trace.sp_order(), trace.num_locations);
            let mut obs = Vec::with_capacity(trace.node_count());
            while let Some((u, op, o)) = runner.step(&trace.dag, &trace.ops) {
                checker.commit(u, op, o);
                obs.push(o);
            }
            let v = checker.verdicts();
            let (c, phi) = completed_pair(&trace, &obs);
            assert_eq!(v.valid, phi.is_valid_for(&c), "validity diverged ({fault:?})");
            assert_eq!(v.lc, v.valid && Lc.contains(&c, &phi), "LC diverged ({fault:?})");
            if !fault.any() {
                // Batch SC is the NP checker; prove agreement where the
                // witness search is cheap (member pairs — a faulted
                // non-member would demand the full exponential search).
                assert_eq!(v.sc, Sc.contains(&c, &phi), "SC diverged on the clean run");
            }
        }
    }
}
