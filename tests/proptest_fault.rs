//! Property-based tests of the fault/perturbation spec grammars
//! (`FaultPlan::from_spec`, `PerturbPlan::from_spec`). Two contracts:
//!
//! 1. **Round trip.** `Display` renders the canonical spec string, and
//!    parse ∘ display ∘ parse is the identity: whatever a spec meant,
//!    the rendered form means the same thing. (The raw input itself is
//!    not a fixed point — entries may be reordered or deduplicated into
//!    canonical form — so the property is checked one render deep.)
//! 2. **No panics.** Arbitrary input — near-miss grammar tokens,
//!    multi-byte UTF-8, empty entries — must come back as an `Err`
//!    naming the 1-based offending entry, never as a panic.

use ccmm::core::fault::{FaultPlan, PerturbPlan, ServeFaultPlan};
use proptest::prelude::*;

/// A syntactically valid `FaultPlan` spec entry.
fn arb_fault_entry() -> impl Strategy<Value = String> {
    prop_oneof![
        (0usize..100).prop_map(|n| format!("panic-at-task={n}")),
        (0usize..100).prop_map(|n| format!("panic-once-at-task={n}")),
        Just("panic-at-task=seeded".to_string()),
        Just("panic-once-at-task=seeded".to_string()),
        (0usize..100, 0usize..50).prop_map(|(i, ms)| format!("delay-at-task={i}:{ms}")),
        (0usize..100).prop_map(|k| format!("kill-after-ckpt={k}")),
        (0usize..100).prop_map(|n| format!("panic-at-fixpoint={n}")),
        (0usize..100).prop_map(|n| format!("panic-once-at-fixpoint={n}")),
        (1usize..100).prop_map(|k| format!("io-error-at-record={k}")),
        any::<u64>().prop_map(|s| format!("seed={s}")),
    ]
}

/// A syntactically valid `ServeFaultPlan` spec entry.
fn arb_serve_entry() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u64..1000).prop_map(|n| format!("panic-at-request={n}")),
        (0u64..1000).prop_map(|n| format!("drop-at-request={n}")),
        (0u64..1000).prop_map(|n| format!("truncate-at-request={n}")),
        (0u64..1000, 0u64..50).prop_map(|(i, ms)| format!("delay-at-request={i}:{ms}")),
        (1u64..64).prop_map(|k| format!("panic=1/{k}")),
        (1u64..64).prop_map(|k| format!("drop=1/{k}")),
        (1u64..64).prop_map(|k| format!("truncate=1/{k}")),
        (1u64..64, 0u64..50).prop_map(|(k, ms)| format!("delay=1/{k}:{ms}")),
        any::<u64>().prop_map(|s| format!("seed={s}")),
    ]
}

/// A syntactically valid `PerturbPlan` spec entry.
fn arb_perturb_entry() -> impl Strategy<Value = String> {
    prop_oneof![
        (1u32..64).prop_map(|k| format!("yield=1/{k}")),
        (1u32..64, 0u32..4096).prop_map(|(k, s)| format!("spin=1/{k}:{s}")),
        Just("steal=rotate".to_string()),
        any::<u64>().prop_map(|s| format!("seed={s}")),
    ]
}

/// Characters biased toward the spec grammar so random picks land on
/// token shapes the parsers almost accept (plus multi-byte UTF-8 to
/// probe byte-boundary handling in error rendering).
const CHARSET: [char; 32] = [
    'p', 'a', 'n', 'i', 'c', 't', 's', 'k', 'd', 'y', '-', '=', ':', '/', ',', ' ', '\t', '0', '1',
    '2', '7', '9', 'e', 'l', 'r', 'o', 'Ω', 'ñ', '€', '✓', 'ß', 'λ',
];

/// A short lowercase identifier that is never a grammar key (the caller
/// prefixes it with `zz-`).
fn arb_junk_key() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 1..8)
        .prop_map(|bytes| bytes.into_iter().map(|b| (b'a' + b) as char).collect())
}

fn arb_text(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..max_len)
        .prop_map(|bytes| bytes.into_iter().map(|b| CHARSET[b as usize % CHARSET.len()]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fault_spec_round_trips_through_display(
        entries in proptest::collection::vec(arb_fault_entry(), 0..6)
    ) {
        let spec = entries.join(",");
        let plan = FaultPlan::from_spec(&spec).expect("generated spec parses");
        let rendered = plan.to_string();
        let reparsed = FaultPlan::from_spec(&rendered)
            .unwrap_or_else(|e| panic!("canonical form `{rendered}` must re-parse: {e}"));
        // FaultPlan carries interior-mutable fire counters, so equality
        // is checked on the canonical rendering, which covers exactly
        // the parsed configuration.
        prop_assert_eq!(rendered, reparsed.to_string());
    }

    #[test]
    fn perturb_spec_round_trips_through_display(
        entries in proptest::collection::vec(arb_perturb_entry(), 0..5)
    ) {
        let spec = entries.join(",");
        let plan = PerturbPlan::from_spec(&spec).expect("generated spec parses");
        let reparsed = PerturbPlan::from_spec(&plan.to_string())
            .unwrap_or_else(|e| panic!("canonical form `{plan}` must re-parse: {e}"));
        prop_assert_eq!(&plan, &reparsed);
        prop_assert_eq!(plan.to_string(), reparsed.to_string());
    }

    #[test]
    fn serve_fault_spec_round_trips_through_display(
        entries in proptest::collection::vec(arb_serve_entry(), 0..6)
    ) {
        let spec = entries.join(",");
        let plan = ServeFaultPlan::from_spec(&spec).expect("generated spec parses");
        let reparsed = ServeFaultPlan::from_spec(&plan.to_string())
            .unwrap_or_else(|e| panic!("canonical form `{plan}` must re-parse: {e}"));
        prop_assert_eq!(&plan, &reparsed);
        // Fault resolution is pure in (plan, index): the reparsed plan
        // injects byte-identical faults at every request index.
        for idx in 0..64 {
            prop_assert_eq!(plan.action(idx), reparsed.action(idx));
        }
    }

    #[test]
    fn fault_spec_parsing_never_panics(text in arb_text(120)) {
        let _ = FaultPlan::from_spec(&text);
    }

    #[test]
    fn serve_fault_spec_parsing_never_panics(text in arb_text(120)) {
        let _ = ServeFaultPlan::from_spec(&text);
    }

    #[test]
    fn perturb_spec_parsing_never_panics(text in arb_text(120)) {
        let _ = PerturbPlan::from_spec(&text);
    }

    #[test]
    fn malformed_trailing_entry_error_names_its_position(
        prefix in proptest::collection::vec(arb_fault_entry(), 0..4),
        junk in arb_junk_key(),
    ) {
        // Append a key that is never part of the grammar: the error must
        // name the entry's 1-based position, not just echo the string.
        let bad = format!("zz-{junk}=1");
        let spec = if prefix.is_empty() { bad } else { format!("{},{bad}", prefix.join(",")) };
        let err = FaultPlan::from_spec(&spec).expect_err("unknown key must not parse");
        let entry_no = prefix.len() + 1;
        prop_assert!(
            err.contains(&format!("entry {entry_no}")),
            "error must name entry {entry_no}: {err}"
        );
    }

    #[test]
    fn malformed_perturb_entry_error_names_its_position(
        prefix in proptest::collection::vec(arb_perturb_entry(), 0..3),
        junk in arb_junk_key(),
    ) {
        let bad = format!("zz-{junk}=1");
        let spec = if prefix.is_empty() { bad } else { format!("{},{bad}", prefix.join(",")) };
        let err = PerturbPlan::from_spec(&spec).expect_err("unknown key must not parse");
        let entry_no = prefix.len() + 1;
        prop_assert!(
            err.contains(&format!("entry {entry_no}")),
            "error must name entry {entry_no}: {err}"
        );
    }
}

/// Spot checks pinning corner cases the generators are unlikely to hit
/// on any given run.
#[test]
fn empty_and_whitespace_specs_are_the_empty_plan() {
    for s in ["", " ", ",", " , ", ",,,"] {
        assert!(FaultPlan::from_spec(s).expect("empty-ish spec parses").is_empty(), "spec {s:?}");
        assert!(PerturbPlan::from_spec(s).expect("empty-ish spec parses").is_empty(), "spec {s:?}");
    }
}

#[test]
fn zero_ratio_denominator_is_rejected_not_a_divide_by_zero() {
    let err = PerturbPlan::from_spec("yield=1/0").expect_err("1/0 must not parse");
    assert!(err.contains("entry 1"), "error must name the entry: {err}");
}
