//! Property-based tests of the serve wire protocol. Three contracts:
//!
//! 1. **The decoder never panics and never loses sync.** Arbitrary
//!    bytes, arbitrarily chunked, produce events without panicking;
//!    well-formed frames survive any chunking byte-exactly; an
//!    oversized length prefix is reported before its payload arrives
//!    and the frame *after* the skipped payload decodes normally.
//! 2. **The request/reply grammars are total.** `parse_request` on
//!    arbitrary payloads returns line-numbered errors, never panics;
//!    `render_request` ∘ `parse_request` is the identity on parsed
//!    requests; `Reply::decode` ∘ `Reply::encode` is the identity.
//! 3. **The handler is total.** Whatever bytes arrive in a frame, the
//!    handler returns a structured reply — including near-miss requests
//!    built from real grammar fragments.

use ccmm::core::serve::{
    encode_frame, parse_request, render_request, FrameDecoder, FrameEvent, Handler, Reply, Request,
    Verb, VerdictCache, MAX_FRAME,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Splits `bytes` at the (sorted, deduped) cut points and feeds each
/// piece to the decoder, draining events after every push.
fn push_chunked(decoder: &mut FrameDecoder, bytes: &[u8], mut cuts: Vec<usize>) -> Vec<FrameEvent> {
    cuts.iter_mut().for_each(|c| *c %= bytes.len().max(1));
    cuts.sort_unstable();
    cuts.dedup();
    cuts.push(bytes.len());
    let mut events = Vec::new();
    let mut at = 0;
    for cut in cuts {
        decoder.push(&bytes[at..cut]);
        at = cut;
        while let Some(e) = decoder.next_event() {
            events.push(e);
        }
    }
    events
}

/// Lines that look like the request grammar — real magic, real verbs,
/// near-miss node/observer rows — so random compositions reach deep
/// into `parse_request` instead of bouncing off the magic check.
fn arb_request_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("ccmm-req-v1 ping".to_string()),
        Just("ccmm-req-v1 models".to_string()),
        Just("ccmm-req-v1 check SC".to_string()),
        Just("ccmm-req-v1 litmus MP".to_string()),
        Just("ccmm-req-v1 litmus".to_string()),
        Just("ccmm-req-v1 bogus".to_string()),
        (0u32..10).prop_map(|n| format!("ccmm-req-v1 ping deadline-ms={n}")),
        Just("ccmm-req-v1 ping deadline-ms=x".to_string()),
        (0u32..9, 0u32..3).prop_map(|(n, l)| format!("n{n}: W({l})")),
        (0u32..9, 0u32..3).prop_map(|(n, l)| format!("n{n}: R({l}) <- n0")),
        (0u32..9).prop_map(|n| format!("n{n}: Q(0)")),
        Just("---".to_string()),
        Just("--".to_string()),
        (0u32..3).prop_map(|l| format!("l{l}: n0 n1")),
        (0u32..3).prop_map(|l| format!("l{l}: n0 _ Ω")),
        Just(String::new()),
    ]
}

/// A newline-free reply body line (the vendored proptest has no regex
/// string strategies, so map bytes over a charset by hand).
fn arb_body_line() -> impl Strategy<Value = String> {
    const CHARSET: [char; 20] = [
        'S', 'C', 'L', 'N', 'W', ':', ' ', 'i', 'n', 'o', 'u', 't', '0', '7', '.', '_', '-', 'p',
        'g', 'Ω',
    ];
    proptest::collection::vec(any::<u8>(), 1..24)
        .prop_map(|bytes| bytes.into_iter().map(|b| CHARSET[b as usize % CHARSET.len()]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoder_never_panics_on_arbitrary_chunked_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        let mut d = FrameDecoder::new();
        for e in push_chunked(&mut d, &bytes, cuts) {
            // Any yielded frame fits the cap; anything larger must have
            // been reported as oversized instead.
            match e {
                FrameEvent::Frame(p) => prop_assert!(p.len() <= MAX_FRAME),
                FrameEvent::Oversized { len } => prop_assert!(len as usize > MAX_FRAME),
            }
        }
    }

    #[test]
    fn well_formed_frames_survive_any_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..12),
    ) {
        let wire: Vec<u8> = payloads.iter().flat_map(|p| encode_frame(p)).collect();
        let mut d = FrameDecoder::new();
        let events = push_chunked(&mut d, &wire, cuts);
        let decoded: Vec<Vec<u8>> = events
            .into_iter()
            .map(|e| match e {
                FrameEvent::Frame(p) => p,
                other => panic!("well-formed stream produced {other:?}"),
            })
            .collect();
        prop_assert_eq!(decoded, payloads);
        prop_assert!(d.is_idle(), "stream of whole frames leaves the decoder at a boundary");
    }

    #[test]
    fn request_parsing_is_total_with_line_numbered_errors(
        lines in proptest::collection::vec(arb_request_line(), 0..8),
        raw in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Grammar-shaped text…
        let text = lines.join("\n");
        if let Err(e) = parse_request(text.as_bytes()) {
            // Line 0 is payload-global; an empty payload still reports
            // line 1 for the missing header.
            prop_assert!(
                e.line <= lines.len().max(1),
                "line {} out of range: {}", e.line, e.message
            );
        }
        // …and raw bytes (usually invalid UTF-8 somewhere).
        let _ = parse_request(&raw);
    }

    #[test]
    fn parsed_requests_render_back_to_themselves(
        seed in any::<u64>(),
        with_deadline in any::<bool>(),
        deadline_ms in 0u64..1000,
    ) {
        let deadline = with_deadline.then_some(deadline_ms);
        let mut rng = StdRng::seed_from_u64(seed);
        let c = ccmm::conformance::sources::random_computation(&mut rng, 6, 2);
        let phi = ccmm::conformance::sources::random_observer(&mut rng, &c);
        let req = Request { verb: Verb::Models { c, phi }, deadline_ms: deadline };
        let text = render_request(&req);
        let back = parse_request(text.as_bytes()).expect("rendered requests parse");
        prop_assert_eq!(&back, &req);
        prop_assert_eq!(render_request(&back), text);
    }

    #[test]
    fn replies_decode_back_to_themselves(
        body in proptest::collection::vec(arb_body_line(), 1..5),
        cached in any::<bool>(),
        line in 0usize..100,
        done in 0usize..7,
        ms in 0u64..10_000,
    ) {
        let total = done + 1;
        for reply in [
            Reply::Ok { body: body.clone(), cached },
            Reply::Error { line, message: body[0].clone() },
            Reply::Degraded { message: body[0].clone() },
            Reply::Partial { done, total, body: body.clone() },
            Reply::Overloaded { retry_after_ms: ms },
            Reply::ShuttingDown,
        ] {
            let back = Reply::decode(&reply.encode())
                .unwrap_or_else(|e| panic!("encoded reply must decode: {e}"));
            prop_assert_eq!(back, reply);
        }
    }

    #[test]
    fn handler_is_total_on_arbitrary_frame_contents(
        lines in proptest::collection::vec(arb_request_line(), 0..8),
        raw in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut h = Handler::new(Arc::new(VerdictCache::new(2, 16)), None);
        // Every reply re-decodes: the handler never emits an unframable
        // or unparsable reply, whatever came in.
        for payload in [lines.join("\n").into_bytes(), raw] {
            let reply = h.handle(&payload, false);
            let back = Reply::decode(&reply.encode())
                .unwrap_or_else(|e| panic!("handler reply must decode: {e}"));
            prop_assert_eq!(back, reply);
        }
    }
}

proptest! {
    // Each case pushes > MAX_FRAME junk bytes; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn oversized_prefix_skips_byte_exactly_and_resyncs(
        extra in 1usize..4096,
        junk_byte in any::<u8>(),
        cut in any::<usize>(),
    ) {
        let len = MAX_FRAME + extra;
        let mut wire = Vec::with_capacity(4 + len + 16);
        wire.extend_from_slice(&(len as u32).to_le_bytes());
        wire.resize(4 + len, junk_byte);
        wire.extend_from_slice(&encode_frame(b"after the flood"));
        let mut d = FrameDecoder::new();
        let events = push_chunked(&mut d, &wire, vec![cut]);
        prop_assert_eq!(
            events,
            vec![
                FrameEvent::Oversized { len: len as u64 },
                FrameEvent::Frame(b"after the flood".to_vec()),
            ]
        );
        prop_assert!(d.is_idle());
    }
}
