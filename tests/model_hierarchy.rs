//! Integration: the full model hierarchy (Figure 1) holds on every pair
//! of exhaustively enumerated universes, across one and two locations.

use ccmm::core::enumerate::for_each_observer;
use ccmm::core::universe::Universe;
use ccmm::core::Model;
use std::ops::ControlFlow;

/// Every membership vector must respect the inclusion chains
/// SC ⊆ LC ⊆ NN ⊆ NW ⊆ WW and NN ⊆ WN ⊆ WW.
fn assert_chain(memberships: &[(Model, bool)], c: &ccmm::core::Computation) {
    let get = |m: Model| memberships.iter().find(|(x, _)| *x == m).unwrap().1;
    let chains = [
        (Model::Sc, Model::Lc),
        (Model::Lc, Model::Nn),
        (Model::Nn, Model::Nw),
        (Model::Nn, Model::Wn),
        (Model::Nw, Model::Ww),
        (Model::Wn, Model::Ww),
        (Model::Ww, Model::Any),
    ];
    for (strong, weak) in chains {
        assert!(!get(strong) || get(weak), "{strong} ⊆ {weak} violated on {c:?}");
    }
}

#[test]
fn hierarchy_holds_on_one_location_universe() {
    let u = Universe::new(4, 1);
    let mut pairs = 0usize;
    let _ = u.for_each_computation(|c| {
        let _ = for_each_observer(c, |phi| {
            let ms: Vec<(Model, bool)> =
                Model::ALL.iter().map(|&m| (m, m.contains(c, phi))).collect();
            assert_chain(&ms, c);
            pairs += 1;
            ControlFlow::Continue(())
        });
        ControlFlow::Continue(())
    });
    assert!(pairs > 10_000, "exhaustive sweep too small: {pairs}");
}

#[test]
fn hierarchy_holds_on_two_location_universe() {
    let u = Universe::new(3, 2);
    let mut pairs = 0usize;
    let _ = u.for_each_computation(|c| {
        let _ = for_each_observer(c, |phi| {
            let ms: Vec<(Model, bool)> =
                Model::ALL.iter().map(|&m| (m, m.contains(c, phi))).collect();
            assert_chain(&ms, c);
            pairs += 1;
            ControlFlow::Continue(())
        });
        ControlFlow::Continue(())
    });
    assert!(pairs > 1_000);
}

#[test]
fn strictness_of_every_figure1_edge() {
    use ccmm::core::relation::{compare, Relation};
    let u = Universe::new(4, 1);
    for (a, b) in [
        (Model::Lc, Model::Nn),
        (Model::Nn, Model::Nw),
        (Model::Nn, Model::Wn),
        (Model::Nw, Model::Ww),
        (Model::Wn, Model::Ww),
        (Model::Ww, Model::Any),
    ] {
        assert_eq!(compare(&a, &b, &u).relation, Relation::StrictlyStronger, "{a} vs {b}");
    }
    assert_eq!(compare(&Model::Nw, &Model::Wn, &u).relation, Relation::Incomparable);
}

#[test]
fn sc_equals_lc_iff_single_location() {
    use ccmm::core::relation::{compare, Relation};
    let u1 = Universe::new(4, 1);
    assert_eq!(compare(&Model::Sc, &Model::Lc, &u1).relation, Relation::Equal);
    let u2 = Universe::new(3, 2);
    assert_eq!(compare(&Model::Sc, &Model::Lc, &u2).relation, Relation::StrictlyStronger);
}
