//! Fault-tolerance acceptance tests for the sweep supervisor.
//!
//! Pins the two contracts ISSUE 4 demands at `--bound 4 --canonical`
//! scale, across 1/2/4 threads:
//!
//! * **kill/resume determinism** — a sweep killed mid-run by the fault
//!   plan and resumed from its checkpoint journal produces counts and
//!   weighted totals bit-identical to an uninterrupted run;
//! * **panic quarantine** — an injected panic does not abort the sweep;
//!   the run completes degraded, reports the quarantined task, and every
//!   witness from a non-quarantined task matches the serial scan.

use ccmm::core::ckpt::{Checkpoint, CkptWriter};
use ccmm::core::fault::FaultPlan;
use ccmm::core::relation::compare;
use ccmm::core::sweep::supervisor::{
    compare_supervised, decode_counts_snapshot, memberships_supervised, Supervisor, SweepStatus,
};
use ccmm::core::sweep::SweepConfig;
use ccmm::core::universe::Universe;
use ccmm::core::Model;

const MODELS: [Model; 6] = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ccmm-it-sup-{name}-{}", std::process::id()))
}

#[test]
fn kill_resume_is_bit_identical_at_bound_4_canonical() {
    let u = Universe::new(4, 1);
    let serial = memberships_supervised(
        &MODELS,
        &u,
        &SweepConfig::serial().canonical(true),
        &Supervisor::none(),
        None,
        None,
    );
    assert_eq!(serial.status, SweepStatus::Complete);
    for threads in [1usize, 2, 4] {
        let cfg = SweepConfig::with_threads(threads).canonical(true);
        let path = temp(&format!("kill-resume-{threads}"));
        let _ = std::fs::remove_file(&path);
        let fingerprint = "it bound=4 locs=1 canonical=true";

        // Run with a snapshot after every task and a kill after the
        // second journal record — a mid-sweep crash with the journal
        // left exactly as a real kill would leave it.
        let mut w = CkptWriter::create(&path, fingerprint).unwrap();
        let sup = Supervisor::with_fault(FaultPlan::none().kill_after_records(2));
        let killed = memberships_supervised(&MODELS, &u, &cfg, &sup, None, Some((&mut w, 1)));
        assert_eq!(killed.status, SweepStatus::Killed, "at {threads} threads");
        assert!(killed.frontier.len() < killed.total_tasks, "the kill left work undone");
        drop(w);

        // Reload, decode the latest snapshot, and resume to completion.
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.fingerprint, fingerprint);
        let snap = decode_counts_snapshot(loaded.latest().expect("at least one snapshot"))
            .expect("snapshot decodes");
        let mut w = CkptWriter::append_to(&path).unwrap();
        let resumed = memberships_supervised(
            &MODELS,
            &u,
            &cfg,
            &Supervisor::none(),
            Some(snap),
            Some((&mut w, 1)),
        );
        assert_eq!(resumed.status, SweepStatus::Complete, "at {threads} threads");
        assert_eq!(
            resumed.value, serial.value,
            "resumed counts drifted from the uninterrupted serial sweep at {threads} threads"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn quarantined_panic_preserves_other_witnesses_at_bound_4() {
    // LC vs NN at bound 4 has a genuine separating witness (the Figure-4
    // pattern first exists at 4 nodes). Panic task 0 — the empty poset,
    // which cannot hold the witness — and check the surviving tasks still
    // deliver exactly the serial scan's witness.
    let u = Universe::new(4, 1);
    let serial = compare(&Model::Lc, &Model::Nn, &u);
    assert!(serial.b_only.is_some(), "bound 4 separates LC from NN");
    for threads in [1usize, 2, 4] {
        let cfg = SweepConfig::with_threads(threads);
        let sup = Supervisor::with_fault(FaultPlan::none().panic_at_task(0));
        let out = compare_supervised(&Model::Lc, &Model::Nn, &u, &cfg, &sup);
        assert_eq!(out.status, SweepStatus::Degraded, "at {threads} threads");
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].task_idx, 0);
        // Task 0 is the single empty-poset pair: everything else was
        // scanned, and the witness contract holds on the survivors.
        assert_eq!(out.value.pairs_checked, serial.pairs_checked - 1, "at {threads} threads");
        assert_eq!(out.value.b_only, serial.b_only, "witness drift at {threads} threads");
        assert_eq!(out.value.a_only, serial.a_only, "witness drift at {threads} threads");
        assert_eq!(out.value.relation, serial.relation, "at {threads} threads");
    }
}

#[test]
fn ckpt_io_error_degrades_without_losing_any_verdicts() {
    // Fail the write of journal record 2: the sweep must keep scanning,
    // deliver verdicts bit-identical to a clean run, and complete
    // Degraded (not Complete — resumability is gone; not a panic).
    let u = Universe::new(4, 1);
    let clean = memberships_supervised(
        &MODELS,
        &u,
        &SweepConfig::serial().canonical(true),
        &Supervisor::none(),
        None,
        None,
    );
    for threads in [1usize, 2] {
        let cfg = SweepConfig::with_threads(threads).canonical(true);
        let path = temp(&format!("io-error-{threads}"));
        let _ = std::fs::remove_file(&path);
        let mut w = CkptWriter::create(&path, "it io-error").unwrap();
        let sup = Supervisor::with_fault(FaultPlan::none().io_error_at_record(2));
        let out = memberships_supervised(&MODELS, &u, &cfg, &sup, None, Some((&mut w, 1)));
        assert_eq!(out.status, SweepStatus::Degraded, "at {threads} threads");
        assert!(out.quarantined.is_empty(), "no task was quarantined — journalling failed");
        let err = out.ckpt_error.as_deref().expect("the I/O error is surfaced");
        assert!(err.contains("injected fault"), "{err}");
        assert_eq!(out.frontier.len(), out.total_tasks, "every task still scanned");
        assert_eq!(out.value, clean.value, "verdicts drifted at {threads} threads");
        // Exactly one record landed before the failure; the journal is
        // still loadable (torn-tail tolerance applies to real crashes,
        // a clean failure leaves whole records).
        drop(w);
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.snapshots.len(), 1);
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn transient_panic_heals_to_a_complete_bit_identical_sweep() {
    let u = Universe::new(4, 1);
    let cfg = SweepConfig::with_threads(2).canonical(true);
    let clean = memberships_supervised(&MODELS, &u, &cfg, &Supervisor::none(), None, None);
    let sup = Supervisor::with_fault(FaultPlan::none().panic_once_at_task(1));
    let healed = memberships_supervised(&MODELS, &u, &cfg, &sup, None, None);
    assert_eq!(healed.status, SweepStatus::Complete, "retry must absorb a transient fault");
    assert!(healed.quarantined.is_empty());
    assert_eq!(healed.value, clean.value);
}
