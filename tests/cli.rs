//! End-to-end tests of the `ccmm` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ccmm"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ccmm-cli-test-{name}-{}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ccmm models"));
    assert!(text.contains("Frigo & Luchangco"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("unknown command"));
}

#[test]
fn check_exit_codes_reflect_membership() {
    let c = write_temp("c", "n0: W(0)\nn1: R(0) <- n0\n");
    let member = write_temp("m", "l0: n0 n0\n");
    let stale = write_temp("s", "l0: n0 _\n");

    let ok = bin().args(["check", "--model", "sc"]).arg(&c).arg(&member).output().unwrap();
    assert_eq!(ok.status.code(), Some(0));
    assert!(String::from_utf8(ok.stdout).unwrap().contains("member"));

    let bad = bin().args(["check", "--model", "ww"]).arg(&c).arg(&stale).output().unwrap();
    assert_eq!(bad.status.code(), Some(1));

    let any = bin().args(["check", "--model", "any"]).arg(&c).arg(&stale).output().unwrap();
    assert_eq!(any.status.code(), Some(0), "validity alone accepts the stale observer");
}

#[test]
fn models_reads_stdin() {
    let obs = write_temp("o", "l0: n0 n0\n");
    let mut child = bin()
        .args(["models", "-"])
        .arg(&obs)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"n0: W(0)\nn1: R(0) <- n0\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SC"), "{text}");
    assert!(text.contains("∈"));
}

#[test]
fn witness_fig4_not_in_lc() {
    let out = bin().args(["witness", "fig4"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("NN   ∈"));
    assert!(text.contains("LC   ∉"));
}

#[test]
fn backer_reports_lc() {
    let out = bin()
        .args(["backer", "--workload", "fib:6", "--procs", "2", "--runs", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("LC 3"), "{text}");
}

#[test]
fn dot_renders_graphviz() {
    let c = write_temp("dot", "n0: W(0)\nn1: R(0) <- n0\n");
    let out = bin().arg("dot").arg(&c).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("digraph"));
    assert!(text.contains("0 -> 1;"));
}

#[test]
fn parse_errors_surface_with_line_numbers() {
    let c = write_temp("bad", "n0: W(0)\nn7: R(0)\n");
    let obs = write_temp("bad-o", "l0: n0 n0\n");
    let out = bin().args(["models"]).arg(&c).arg(&obs).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("line 2"));
}

#[test]
fn multibyte_garbage_in_a_corpus_file_exits_2_with_a_line_number() {
    // `Ω` begins with a non-ASCII byte; the parser must reject it as an
    // unknown op (with the offending line number), never split the token
    // mid-character and panic.
    let c = write_temp("mb", "n0: Ω(0)\n");
    let obs = write_temp("mb-o", "l0: n0\n");
    let out = bin().args(["models"]).arg(&c).arg(&obs).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "parse errors are usage errors, not crashes");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 1"), "error must carry the line number: {err}");
    assert!(err.contains('Ω'), "error must name the offending token: {err}");
}

#[test]
fn conformance_smoke_passes_and_exits_zero() {
    let out = bin()
        .args(["conformance", "--nodes", "3", "--random", "30", "--no-harvest", "--threads", "2"])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(text.contains("all fast checkers agree"), "{text}");
    assert!(text.contains("exhaustive"), "{text}");
    assert!(text.contains("lane differential:"), "{text}");
    let fix = text.lines().find(|l| l.starts_with("fixpoint differential:")).expect(&text);
    assert!(fix.contains("0 mismatch(es)"), "{fix}");
}

#[test]
fn conformance_self_test_reports_the_pipeline_is_live() {
    let dir = std::env::temp_dir().join(format!("ccmm-conf-out-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .args(["conformance", "--nodes", "3", "--random", "0", "--no-harvest", "--self-test"])
        .args(["--out".as_ref(), dir.as_os_str()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("self-test"), "{text}");
    // No disagreements on the healthy checkers, so no witness files.
    assert!(!dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conformance_rejects_oversized_bounds() {
    let out = bin().args(["conformance", "--nodes", "9"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("too slow"));
}

/// A `ccmm sweep` invocation with `CCMM_BENCH_JSON` pointed at a
/// test-scoped temp file, so these tests never touch the committed
/// baseline.
fn sweep_cmd(name: &str) -> (Command, std::path::PathBuf) {
    let json = std::env::temp_dir().join(format!("ccmm-cli-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&json);
    let mut cmd = bin();
    cmd.arg("sweep").env("CCMM_BENCH_JSON", &json);
    (cmd, json)
}

/// The `"  SC   361"`-style membership count lines — the bit-identity
/// fingerprint the kill/resume round trip compares.
fn membership_counts(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .skip_while(|l| !l.starts_with("memberships over"))
        .skip(1)
        .take(6)
        .map(str::to_string)
        .collect()
}

#[test]
fn sweep_gate_without_baseline_exits_5() {
    let (mut cmd, json) = sweep_cmd("gate-nobase");
    let out = cmd.args(["--bound", "3", "--gate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(5), "dedicated exit code for a gate with no baseline");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("no baseline for this config — run without --gate to record one"),
        "unexpected stderr: {err}"
    );
    assert!(!json.exists(), "a refused gate run must not record itself as the baseline");
}

#[test]
fn sweep_injected_panic_degrades_but_completes() {
    let (mut cmd, json) = sweep_cmd("degraded");
    let out = cmd
        .args(["--bound", "3", "--canonical", "--threads", "2", "--fault", "panic-at-task=1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "degraded exit code");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("quarantined: memberships task 1"), "{text}");
    assert!(text.contains("(degraded)"), "{text}");
    assert!(text.contains("sweep status: degraded"), "{text}");
    // The sweep still ran to the end: all phases reported, records written.
    assert!(text.contains("NN* worklist fixpoint"), "{text}");
    assert!(text.contains("recorded 4 sweep record(s)"), "{text}");
    let _ = std::fs::remove_file(&json);
}

#[test]
fn sweep_kill_and_resume_round_trip_is_bit_identical() {
    let ckpt = std::env::temp_dir().join(format!("ccmm-cli-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let shape = ["--bound", "4", "--canonical", "--threads", "2"];

    // Uninterrupted reference run.
    let (mut cmd, json1) = sweep_cmd("kill-clean");
    let clean = cmd.args(shape).output().unwrap();
    assert_eq!(clean.status.code(), Some(0));
    let clean_counts = membership_counts(&String::from_utf8(clean.stdout).unwrap());
    assert_eq!(clean_counts.len(), 6);

    // Killed run: checkpoint every task, crash after two journal records.
    let (mut cmd, json2) = sweep_cmd("kill-killed");
    let killed = cmd
        .args(shape)
        .args(["--ckpt-every", "1", "--fault", "kill-after-ckpt=2", "--ckpt"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(killed.status.code(), Some(70), "killed-by-fault-plan exit code");
    let text = String::from_utf8(killed.stdout).unwrap();
    assert!(text.contains("killed by fault plan"), "{text}");
    assert!(text.contains("--resume"), "{text}");

    // Resume: bit-identical membership counts, clean exit.
    let (mut cmd, json3) = sweep_cmd("kill-resumed");
    let resumed = cmd.args(shape).arg("--resume").arg(&ckpt).output().unwrap();
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_text = String::from_utf8(resumed.stdout).unwrap();
    assert!(resumed_text.contains("resuming from"), "{resumed_text}");
    assert_eq!(
        membership_counts(&resumed_text),
        clean_counts,
        "resumed counts must be bit-identical to the uninterrupted run"
    );
    for p in [&ckpt, &json1, &json2, &json3] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn sweep_lane64_counts_match_scalar() {
    let shape = ["--bound", "4", "--canonical", "--threads", "2"];
    let (mut cmd, json1) = sweep_cmd("lane-scalar");
    let scalar = cmd.args(shape).output().unwrap();
    assert_eq!(scalar.status.code(), Some(0));
    let scalar_counts = membership_counts(&String::from_utf8(scalar.stdout).unwrap());
    assert_eq!(scalar_counts.len(), 6);

    let (mut cmd, json2) = sweep_cmd("lane-lane");
    let lane = cmd.args(shape).args(["--engine", "lane64"]).output().unwrap();
    assert_eq!(lane.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&lane.stderr));
    let text = String::from_utf8(lane.stdout).unwrap();
    assert!(text.contains("lane64 enumeration"), "{text}");
    assert_eq!(
        membership_counts(&text),
        scalar_counts,
        "lane64 membership counts must be bit-identical to the scalar engine"
    );
    // The lattice phase ran through the lane kernels and still agrees.
    assert!(text.contains("lattice"), "{text}");
    for p in [&json1, &json2] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn sweep_lane64_flag_validation() {
    // lane64 rides the canonical task list.
    let (mut cmd, _) = sweep_cmd("lane-nocanon");
    let out = cmd.args(["--bound", "3", "--engine", "lane64"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("requires --canonical"));
    // --alloc is the scalar baseline mode.
    let (mut cmd, _) = sweep_cmd("lane-alloc");
    let out = cmd
        .args(["--bound", "3", "--canonical", "--alloc", "--engine", "lane64"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unknown engines are rejected with the valid set.
    let (mut cmd, _) = sweep_cmd("lane-bogus");
    let out = cmd.args(["--bound", "3", "--canonical", "--engine", "warp"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("scalar | lane64"));
    // Bound 6 stays out of reach for the scalar engine; the error names
    // the phases each engine supports and points at the lane fixpoint.
    let (mut cmd, _) = sweep_cmd("lane-b6-scalar");
    let out = cmd.args(["--bound", "6", "--canonical"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("memberships, lattice, fixpoint, constructibility"),
        "the error must name the scalar engine's phases: {err}"
    );
    assert!(err.contains("up to --bound 5"), "{err}");
    assert!(err.contains("--canonical --engine lane64"), "{err}");
    assert!(err.contains("every phase through --bound 6"), "{err}");
}

#[test]
fn sweep_lane64_fixpoint_matches_scalar_worklist() {
    // The bound-4 Δ* fixpoint and constructibility verdicts must be
    // bit-identical across engines — same survivors, deletions, passes.
    let fixpoint_line = |text: &str| {
        text.lines()
            .find(|l| l.contains("fixpoint:"))
            .map(|l| l.split_once("fixpoint:").unwrap().1.split('[').next().unwrap().to_string())
            .expect("fixpoint line present")
    };
    let shape = ["--bound", "4", "--canonical", "--threads", "2"];
    let (mut cmd, json1) = sweep_cmd("fix-scalar");
    let scalar = cmd.args(shape).output().unwrap();
    assert_eq!(scalar.status.code(), Some(0));
    let scalar_text = String::from_utf8(scalar.stdout).unwrap();
    assert!(scalar_text.contains("NN* worklist fixpoint:"), "{scalar_text}");

    let (mut cmd, json2) = sweep_cmd("fix-lane");
    let lane = cmd.args(shape).args(["--engine", "lane64"]).output().unwrap();
    assert_eq!(lane.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&lane.stderr));
    let lane_text = String::from_utf8(lane.stdout).unwrap();
    assert!(lane_text.contains("NN* lane64 fixpoint:"), "{lane_text}");
    assert_eq!(
        fixpoint_line(&scalar_text),
        fixpoint_line(&lane_text),
        "lane64 fixpoint survivors/deleted/passes must be bit-identical to scalar"
    );
    let verdicts = |text: &str| -> Vec<String> {
        text.lines().filter(|l| l.contains("constructible")).map(str::to_string).collect()
    };
    assert_eq!(verdicts(&scalar_text), verdicts(&lane_text));
    for p in [&json1, &json2] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn sweep_lane64_gate_compares_same_engine_baselines_only() {
    // Record a scalar canonical baseline…
    let (mut cmd, json) = sweep_cmd("lane-gate");
    let out = cmd.args(["--bound", "3", "--canonical"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(json.exists());
    // …which a gated lane64 run must NOT see: same bound, same universe,
    // different engine → exit 5, nothing recorded.
    let mut cmd = bin();
    cmd.arg("sweep").env("CCMM_BENCH_JSON", &json);
    let out =
        cmd.args(["--bound", "3", "--canonical", "--engine", "lane64", "--gate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(5), "scalar baseline must not satisfy a lane64 gate");
    // Once a lane64 baseline exists, the lane64 gate is live.
    let mut cmd = bin();
    cmd.arg("sweep").env("CCMM_BENCH_JSON", &json);
    let out = cmd.args(["--bound", "3", "--canonical", "--engine", "lane64"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let mut cmd = bin();
    cmd.arg("sweep").env("CCMM_BENCH_JSON", &json);
    let out =
        cmd.args(["--bound", "3", "--canonical", "--engine", "lane64", "--gate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_file(&json);
}

#[test]
fn sweep_lane64_kill_and_resume_round_trip_is_bit_identical() {
    let ckpt = std::env::temp_dir().join(format!("ccmm-cli-lane-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let shape = ["--bound", "4", "--canonical", "--engine", "lane64", "--threads", "2"];

    let (mut cmd, json1) = sweep_cmd("lane-kill-clean");
    let clean = cmd.args(shape).output().unwrap();
    assert_eq!(clean.status.code(), Some(0));
    let clean_counts = membership_counts(&String::from_utf8(clean.stdout).unwrap());
    assert_eq!(clean_counts.len(), 6);

    let (mut cmd, json2) = sweep_cmd("lane-kill-killed");
    let killed = cmd
        .args(shape)
        .args(["--ckpt-every", "1", "--fault", "kill-after-ckpt=2", "--ckpt"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(killed.status.code(), Some(70), "killed-by-fault-plan exit code");

    let (mut cmd, json3) = sweep_cmd("lane-kill-resumed");
    let resumed = cmd.args(shape).arg("--resume").arg(&ckpt).output().unwrap();
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let resumed_text = String::from_utf8(resumed.stdout).unwrap();
    assert!(resumed_text.contains("resuming from"), "{resumed_text}");
    assert_eq!(
        membership_counts(&resumed_text),
        clean_counts,
        "resumed lane64 counts must be bit-identical to the uninterrupted run"
    );
    let fix = ckpt.with_extension("fixpoint");
    for p in [&ckpt, &fix, &json1, &json2, &json3] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn sweep_zero_deadline_exits_partial_with_resume_frontier() {
    let (mut cmd, json) = sweep_cmd("deadline");
    let out = cmd.args(["--bound", "4", "--canonical", "--deadline-secs", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(4), "partial (deadline) exit code");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("deadline hit"), "{text}");
    assert!(text.contains("resume frontier"), "{text}");
    assert!(text.contains("(partial)"), "{text}");
    let _ = std::fs::remove_file(&json);
}

#[test]
fn sweep_metrics_and_trace_files_report_the_work_done() {
    let tmp = std::env::temp_dir();
    let metrics = tmp.join(format!("ccmm-cli-metrics-{}.json", std::process::id()));
    let trace = tmp.join(format!("ccmm-cli-trace-{}.jsonl", std::process::id()));
    let (mut cmd, json) = sweep_cmd("telemetry");
    let out = cmd
        .args(["--bound", "3", "--canonical", "--metrics"])
        .arg(&metrics)
        .arg("--trace")
        .arg(&trace)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(m.contains("\"schema\":\"ccmm-metrics-v1\""), "{m}");
    for phase in ["memberships", "lattice", "fixpoint", "constructibility"] {
        assert!(m.contains(&format!("\"name\":\"{phase}\"")), "missing phase {phase}: {m}");
    }
    assert!(m.contains("\"pairs_checked\":"), "memberships phase must count pairs: {m}");
    assert!(!m.contains("\"pairs_checked\":0"), "pair count must be non-zero: {m}");

    let t = std::fs::read_to_string(&trace).unwrap();
    for span in ["sweep/memberships", "sweep/lattice", "sweep/fixpoint", "sweep/constructibility"] {
        assert!(t.contains(&format!("\"span\":\"{span}\"")), "missing span {span}: {t}");
    }
    for p in [&metrics, &trace, &json] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn sweep_resume_rejects_a_mismatched_fingerprint() {
    let ckpt = std::env::temp_dir().join(format!("ccmm-cli-fpmm-{}", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let (mut cmd, json1) = sweep_cmd("fpmm-kill");
    let killed = cmd
        .args(["--bound", "4", "--canonical", "--ckpt-every", "1"])
        .args(["--fault", "kill-after-ckpt=1", "--ckpt"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(killed.status.code(), Some(70));
    // Same journal, different universe: refused before any work runs.
    let (mut cmd, json2) = sweep_cmd("fpmm-resume");
    let out = cmd.args(["--bound", "3", "--canonical", "--resume"]).arg(&ckpt).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("fingerprint mismatch"));
    for p in [&ckpt, &json1, &json2] {
        let _ = std::fs::remove_file(p);
    }
}

/// The deterministic half of a `ccmm stress` report: the completed/
/// checks line (wall-clock stripped) plus any failure lines. The
/// "timing-dependent:" line is deliberately excluded — distinct
/// observer and SC tallies vary with OS scheduling.
fn stress_deterministic_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| {
            l.starts_with("completed ")
                || l.starts_with("CONFORMANCE FAILURE")
                || l.starts_with("failing seed:")
                || l.starts_with("shrunk trace")
        })
        .map(|l| match (l.find(" ["), l.find(']')) {
            (Some(a), Some(b)) if a < b => format!("{}{}", &l[..a], &l[b + 1..]),
            _ => l.to_string(),
        })
        .collect()
}

#[test]
fn stress_is_deterministic_per_seed_iters_threads() {
    let shape = ["stress", "--seed", "11", "--iters", "20", "--threads", "2"];
    let a = bin().args(shape).output().unwrap();
    let b = bin().args(shape).output().unwrap();
    assert_eq!(a.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(b.status.code(), Some(0));
    let la = stress_deterministic_lines(&String::from_utf8(a.stdout).unwrap());
    let lb = stress_deterministic_lines(&String::from_utf8(b.stdout).unwrap());
    assert!(!la.is_empty(), "report must include the completed line");
    assert_eq!(la, lb, "same (seed, iters, threads) must report identical deterministic lines");
}

#[test]
fn stress_kill_and_resume_respects_the_seed_frontier() {
    let ckpt = std::env::temp_dir().join(format!("ccmm-cli-stress-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let shape = ["--seed", "5", "--iters", "12", "--threads", "2"];

    // Uninterrupted reference run.
    let clean = bin().arg("stress").args(shape).output().unwrap();
    assert_eq!(clean.status.code(), Some(0));
    let clean_lines = stress_deterministic_lines(&String::from_utf8(clean.stdout).unwrap());

    // Killed run: checkpoint every iteration, crash after three records.
    let killed = bin()
        .arg("stress")
        .args(shape)
        .args(["--ckpt-every", "1", "--fault", "kill-after-ckpt=3", "--ckpt"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(killed.status.code(), Some(70), "killed-by-fault-plan exit code");
    let text = String::from_utf8(killed.stdout).unwrap();
    assert!(text.contains("killed by fault plan"), "{text}");
    assert!(text.contains("--resume"), "{text}");

    // Resume: skips the journalled iterations, finishes the rest, and
    // the deterministic report matches the uninterrupted run exactly.
    let resumed = bin().arg("stress").args(shape).arg("--resume").arg(&ckpt).output().unwrap();
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    let rtext = String::from_utf8(resumed.stdout).unwrap();
    let already: usize = rtext
        .lines()
        .find(|l| l.starts_with("resuming from"))
        .and_then(|l| l.split(": ").nth(1))
        .and_then(|s| s.split(' ').next())
        .and_then(|n| n.parse().ok())
        .expect("resume line reports the journalled frontier");
    assert!(
        (1..12).contains(&already),
        "resume must start from a non-empty, incomplete frontier, got {already}"
    );
    assert_eq!(
        stress_deterministic_lines(&rtext),
        clean_lines,
        "resumed totals must match the uninterrupted run"
    );
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn stress_self_test_catches_a_seeded_mutation() {
    let out =
        bin().args(["stress", "--self-test", "--iters", "2", "--threads", "2"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("caught, and clean executor passes"), "{text}");
}

#[test]
fn stress_mutated_run_reports_a_reproducible_failing_seed() {
    let mutated = bin()
        .args(["stress", "--seed", "3", "--iters", "30", "--threads", "2"])
        .args(["--mutate", "skip-reconcile"])
        .output()
        .unwrap();
    assert_eq!(mutated.status.code(), Some(1), "conformance failure exit code");
    let text = String::from_utf8(mutated.stdout).unwrap();
    assert!(text.contains("CONFORMANCE FAILURE"), "{text}");
    let seed: u64 = text
        .lines()
        .find(|l| l.starts_with("failing seed: "))
        .and_then(|l| l.split(' ').nth(2).map(|s| s.trim_end_matches(',')))
        .and_then(|n| n.parse().ok())
        .expect("failure report names the failing seed");
    let trace: Vec<&str> = text.lines().skip_while(|l| !l.starts_with("shrunk trace")).collect();
    assert!(trace.len() > 1, "failure report includes the shrunk trace: {text}");

    // The printed rerun command reproduces the identical shrunk trace.
    let rerun = bin()
        .args(["stress", "--seed", &seed.to_string(), "--iters", "1", "--threads", "2"])
        .args(["--mutate", "skip-reconcile"])
        .output()
        .unwrap();
    assert_eq!(rerun.status.code(), Some(1));
    let rtext = String::from_utf8(rerun.stdout).unwrap();
    let rtrace: Vec<&str> = rtext.lines().skip_while(|l| !l.starts_with("shrunk trace")).collect();
    assert_eq!(trace, rtrace, "rerun from the printed seed must shrink to the same trace");
}

/// Spawns a `ccmm serve` child on an ephemeral port and parses the
/// `listening on <addr>` line. Returns the child, the buffered stdout
/// reader (positioned after the listening line), and the address.
#[cfg(unix)]
#[allow(clippy::zombie_processes)] // every caller kills or TERMs the child and then waits on it
fn spawn_serve(
    extra: &[&str],
) -> (std::process::Child, std::io::BufReader<std::process::ChildStdout>, String) {
    use std::io::BufRead;
    let mut child = bin()
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let mut reader = std::io::BufReader::new(child.stdout.take().unwrap());
    for _ in 0..10 {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "serve exited before listening");
        if let Some(addr) = line.trim().strip_prefix("listening on ") {
            return (child, reader, addr.to_string());
        }
    }
    panic!("serve never printed its listening line");
}

#[cfg(unix)]
#[test]
fn serve_round_trips_queries_then_drains_cleanly_on_sigterm() {
    use std::io::Read as _;
    let (mut child, mut reader, addr) = spawn_serve(&[]);
    let c = write_temp("srv-c", "n0: W(0)\nn1: R(0) <- n0\n");
    let member = write_temp("srv-m", "l0: n0 n0\n");
    let stale = write_temp("srv-s", "l0: n0 _\n");

    let ping = bin().args(["query", "--addr", &addr, "--ping"]).output().unwrap();
    assert_eq!(ping.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&ping.stderr));
    assert_eq!(String::from_utf8_lossy(&ping.stdout).trim(), "pong");

    // `query --model` mirrors `ccmm check` exit codes over the wire.
    let ok = bin()
        .args(["query", "--addr", &addr, "--model", "sc"])
        .arg(&c)
        .arg(&member)
        .output()
        .unwrap();
    assert_eq!(ok.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&ok.stdout).trim(), "SC: in");
    let bad = bin()
        .args(["query", "--addr", &addr, "--model", "ww"])
        .arg(&c)
        .arg(&stale)
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    assert_eq!(String::from_utf8_lossy(&bad.stdout).trim(), "WW: out");

    // All six verdicts; a repeat of the same pair is answered by the cache.
    let all =
        bin().args(["query", "--addr", &addr, "--models"]).arg(&c).arg(&member).output().unwrap();
    assert_eq!(all.status.code(), Some(0));
    let text = String::from_utf8_lossy(&all.stdout).to_string();
    for m in ["SC", "LC", "NN", "NW", "WN", "WW"] {
        assert!(text.contains(&format!("{m}: ")), "{text}");
    }
    let again =
        bin().args(["query", "--addr", &addr, "--models"]).arg(&c).arg(&member).output().unwrap();
    assert_eq!(again.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&again.stdout), text, "cached verdicts are bit-identical");
    assert!(String::from_utf8_lossy(&again.stderr).contains("(cached)"));

    let lit = bin().args(["query", "--addr", &addr, "--litmus", "MP"]).output().unwrap();
    assert_eq!(lit.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&lit.stdout).contains("SC: "), "litmus outcome lines");

    // SIGTERM → graceful drain: stats printed, exit 0, no leaked connections.
    let term = std::process::Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(term.success());
    let status = child.wait().unwrap();
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();
    assert_eq!(status.code(), Some(0), "graceful drain exits 0: {rest}");
    assert!(rest.contains("drain requested"), "{rest}");
    assert!(rest.contains("drained: "), "{rest}");
    assert!(rest.contains("cache: "), "{rest}");
    let conns = rest.lines().find(|l| l.starts_with("connections: ")).expect(&rest);
    assert!(conns.contains("accepted"), "{conns}");
}

#[cfg(unix)]
#[test]
fn serve_metrics_extend_the_v1_schema() {
    let metrics =
        std::env::temp_dir().join(format!("ccmm-cli-serve-metrics-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&metrics);
    let (mut child, mut reader, addr) = spawn_serve(&["--metrics", metrics.to_str().unwrap()]);
    let ping = bin().args(["query", "--addr", &addr, "--ping"]).output().unwrap();
    assert_eq!(ping.status.code(), Some(0));
    std::process::Command::new("kill").args(["-TERM", &child.id().to_string()]).status().unwrap();
    assert_eq!(child.wait().unwrap().code(), Some(0));
    use std::io::Read as _;
    let mut rest = String::new();
    reader.read_to_string(&mut rest).unwrap();

    // Same schema tag existing readers key on, plus the serve counters.
    let m = std::fs::read_to_string(&metrics).unwrap();
    assert!(m.contains("\"schema\":\"ccmm-metrics-v1\""), "{m}");
    assert!(m.contains("\"name\":\"serve\""), "{m}");
    for counter in ["serve_requests", "serve_served", "serve_connections"] {
        assert!(m.contains(&format!("\"{counter}\":")), "missing {counter}: {m}");
    }
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn serve_self_test_proves_request_granular_quarantine() {
    let out = bin().args(["serve", "--self-test"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("caught: "), "{text}");
    assert!(text.contains("injected fault"), "{text}");
    assert!(text.contains("same connection served normally"), "{text}");
}

#[test]
fn query_against_nothing_exits_with_the_transport_code() {
    let out = bin()
        .args(["query", "--addr", "127.0.0.1:1", "--ping", "--retries", "1", "--timeout-ms", "100"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(7), "dedicated exit code for no-reply-at-all");
    assert!(String::from_utf8_lossy(&out.stderr).contains("no reply"), "names the failure");
}

#[test]
fn sweep_ckpt_io_error_degrades_but_keeps_every_verdict() {
    let ckpt = std::env::temp_dir().join(format!("ccmm-cli-ioerr-{}", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let (mut cmd, json) = sweep_cmd("ioerr");
    let out = cmd
        .args(["--bound", "3", "--canonical", "--ckpt-every", "1"])
        .args(["--fault", "io-error-at-record=2", "--ckpt"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "ckpt I/O failure degrades, never crashes");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("checkpoint journalling failed"), "{err}");
    assert!(err.contains("injected fault: io error at ckpt record 2"), "{err}");
    let text = String::from_utf8(out.stdout).unwrap();
    // The sweep itself still ran to completion with full results.
    assert_eq!(membership_counts(&text).len(), 6, "{text}");
    assert!(text.contains("sweep status: degraded"), "{text}");
    for p in [&ckpt, &json] {
        let _ = std::fs::remove_file(p);
    }
}

fn watch_cmd(name: &str) -> (Command, std::path::PathBuf) {
    let json =
        std::env::temp_dir().join(format!("ccmm-cli-watch-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&json);
    let mut cmd = bin();
    cmd.arg("watch").env("CCMM_BENCH_JSON", &json);
    (cmd, json)
}

/// The deterministic verdict + conformance lines a resume round trip
/// must reproduce bit-for-bit (throughput lines are timing-dependent).
fn watch_verdict_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| l.starts_with("streamed ") || l.starts_with("conformance:"))
        .map(str::to_string)
        .collect()
}

#[test]
fn watch_streams_a_fib_trace_and_reports_lc() {
    let (mut cmd, json) = watch_cmd("smoke");
    let out = cmd.args(["--workload", "fib:10"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("streamed 441/441 node(s): valid true | SC true | LC true"), "{text}");
    assert!(text.contains("0 divergence(s)"), "{text}");
    assert!(json.exists(), "a watch run must leave a bench record");
    let _ = std::fs::remove_file(&json);
}

#[test]
fn watch_faulted_run_detects_the_lc_violation_with_batch_agreement() {
    let (mut cmd, json) = watch_cmd("fault");
    let out = cmd
        .args(["--workload", "fib:10", "--fault", "skip-reconcile", "--sample-every", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "an LC violation is a failed check");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("LC false"), "{text}");
    assert!(text.contains("0 divergence(s)"), "batch checkers must agree on every prefix: {text}");
    let _ = std::fs::remove_file(&json);
}

#[test]
fn watch_deadline_exits_partial_and_resume_lands_on_identical_verdicts() {
    let ckpt = std::env::temp_dir().join(format!("ccmm-cli-watch-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);

    // Uninterrupted reference run.
    let (mut full, json_full) = watch_cmd("resume-ref");
    let full_out = full.args(["--workload", "fib:16"]).output().unwrap();
    assert_eq!(full_out.status.code(), Some(0));
    let reference = watch_verdict_lines(&String::from_utf8(full_out.stdout).unwrap());

    // Deadline kill: exit 4 with a node frontier and a journal.
    let (mut part, json_part) = watch_cmd("resume-part");
    let out = part
        .args(["--workload", "fib:16", "--deadline-secs", "0", "--ckpt"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "deadline exit code");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("deadline hit:"), "{text}");
    assert!(text.contains("resume frontier: [(0, "), "node frontier printed: {text}");
    assert!(text.contains("resume with --resume"), "{text}");

    // Resume: completes and reproduces the reference verdicts exactly.
    let (mut res, json_res) = watch_cmd("resume-cont");
    let out = res.args(["--workload", "fib:16", "--resume"]).arg(&ckpt).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("resuming from"), "{text}");
    assert_eq!(
        watch_verdict_lines(&text),
        reference,
        "resumed verdicts must be identical to an uninterrupted run"
    );
    for p in [&ckpt, &json_full, &json_part, &json_res] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn watch_resume_rejects_a_mismatched_fingerprint() {
    let ckpt = std::env::temp_dir().join(format!("ccmm-cli-watch-ckpt-fp-{}", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);
    let (mut part, json_a) = watch_cmd("fp-a");
    let out = part
        .args(["--workload", "fib:16", "--deadline-secs", "0", "--ckpt"])
        .arg(&ckpt)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    // Same journal, different protocol config ⇒ the replay would not be
    // deterministic, so the fingerprint must refuse it.
    let (mut res, json_b) = watch_cmd("fp-b");
    let out =
        res.args(["--workload", "fib:16", "--procs", "2", "--resume"]).arg(&ckpt).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8(out.stderr).unwrap().contains("fingerprint mismatch"),
        "mismatched config must be rejected"
    );
    for p in [&ckpt, &json_a, &json_b] {
        let _ = std::fs::remove_file(p);
    }
}
