//! End-to-end tests of the `ccmm` CLI binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ccmm"))
}

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ccmm-cli-test-{name}-{}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("ccmm models"));
    assert!(text.contains("Frigo & Luchangco"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("unknown command"));
}

#[test]
fn check_exit_codes_reflect_membership() {
    let c = write_temp("c", "n0: W(0)\nn1: R(0) <- n0\n");
    let member = write_temp("m", "l0: n0 n0\n");
    let stale = write_temp("s", "l0: n0 _\n");

    let ok = bin().args(["check", "--model", "sc"]).arg(&c).arg(&member).output().unwrap();
    assert_eq!(ok.status.code(), Some(0));
    assert!(String::from_utf8(ok.stdout).unwrap().contains("member"));

    let bad = bin().args(["check", "--model", "ww"]).arg(&c).arg(&stale).output().unwrap();
    assert_eq!(bad.status.code(), Some(1));

    let any = bin().args(["check", "--model", "any"]).arg(&c).arg(&stale).output().unwrap();
    assert_eq!(any.status.code(), Some(0), "validity alone accepts the stale observer");
}

#[test]
fn models_reads_stdin() {
    let obs = write_temp("o", "l0: n0 n0\n");
    let mut child = bin()
        .args(["models", "-"])
        .arg(&obs)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.as_mut().unwrap().write_all(b"n0: W(0)\nn1: R(0) <- n0\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SC"), "{text}");
    assert!(text.contains("∈"));
}

#[test]
fn witness_fig4_not_in_lc() {
    let out = bin().args(["witness", "fig4"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("NN   ∈"));
    assert!(text.contains("LC   ∉"));
}

#[test]
fn backer_reports_lc() {
    let out = bin()
        .args(["backer", "--workload", "fib:6", "--procs", "2", "--runs", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("LC 3"), "{text}");
}

#[test]
fn dot_renders_graphviz() {
    let c = write_temp("dot", "n0: W(0)\nn1: R(0) <- n0\n");
    let out = bin().arg("dot").arg(&c).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.starts_with("digraph"));
    assert!(text.contains("0 -> 1;"));
}

#[test]
fn parse_errors_surface_with_line_numbers() {
    let c = write_temp("bad", "n0: W(0)\nn7: R(0)\n");
    let obs = write_temp("bad-o", "l0: n0 n0\n");
    let out = bin().args(["models"]).arg(&c).arg(&obs).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("line 2"));
}

#[test]
fn conformance_smoke_passes_and_exits_zero() {
    let out = bin()
        .args(["conformance", "--nodes", "3", "--random", "30", "--no-harvest", "--threads", "2"])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(text.contains("all fast checkers agree"), "{text}");
    assert!(text.contains("exhaustive"), "{text}");
}

#[test]
fn conformance_self_test_reports_the_pipeline_is_live() {
    let dir = std::env::temp_dir().join(format!("ccmm-conf-out-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = bin()
        .args(["conformance", "--nodes", "3", "--random", "0", "--no-harvest", "--self-test"])
        .args(["--out".as_ref(), dir.as_os_str()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("self-test"), "{text}");
    // No disagreements on the healthy checkers, so no witness files.
    assert!(!dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conformance_rejects_oversized_bounds() {
    let out = bin().args(["conformance", "--nodes", "9"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("too slow"));
}
