//! Property-based tests of the text-format parsers: no input — ASCII
//! garbage, multi-byte UTF-8, truncated lines — may ever panic. Errors
//! must come back as `ParseError`s (which the CLI maps to exit 2), never
//! as a byte-boundary slice panic or an unwrap.

use ccmm::core::parse::{parse_computation, parse_observer, render_computation};
use proptest::prelude::*;

/// Characters biased toward the grammar (op letters, digits, `<-`, `:`,
/// separators) plus multi-byte UTF-8 (`Ω`, `ñ`, `€`, `✓`, `𝄞`): random
/// picks land on token shapes the parser almost accepts, where a
/// `split_at(1)` on a multi-byte character used to panic.
const CHARSET: [char; 32] = [
    'n', 'R', 'W', 'N', 'l', '(', ')', ':', '<', '-', ' ', '\n', '\t', '#', '_', ',', '0', '1',
    '2', '3', '7', '9', 'x', 'Ω', 'ñ', 'é', '€', '✓', '𝄞', 'ß', 'λ', 'Я',
];

fn arb_text(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..max_len)
        .prop_map(|bytes| bytes.into_iter().map(|b| CHARSET[b as usize % CHARSET.len()]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_computation_never_panics(text in arb_text(200)) {
        let _ = parse_computation(&text);
    }

    #[test]
    fn parse_observer_never_panics(text in arb_text(120)) {
        // Parse observers against a small fixed computation so node
        // references sometimes resolve and the later stages get coverage.
        let c = parse_computation("n0: W(0)\nn1: R(0) <- n0\n").expect("fixture parses");
        let _ = parse_observer(&text, &c);
    }

    #[test]
    fn parsing_is_left_inverse_of_rendering(text in arb_text(200)) {
        // Whenever garbage happens to parse, the render/parse round trip
        // must reproduce it — pinning that accepted inputs mean what the
        // renderer says they mean.
        if let Ok(c) = parse_computation(&text) {
            let again = parse_computation(&render_computation(&c)).expect("render re-parses");
            prop_assert_eq!(c, again);
        }
    }
}

/// The regression that motivated the byte-safety pass: `Ω` opens with a
/// non-ASCII byte, and `split_at(1)` on it panicked mid-character.
#[test]
fn multibyte_op_is_a_parse_error_not_a_panic() {
    let err = parse_computation("n0: Ω(0)").expect_err("Ω is not an op");
    let msg = err.to_string();
    assert!(msg.contains("line 1"), "error must carry the line: {msg}");
    assert!(msg.contains('Ω'), "error must name the token: {msg}");
}
