//! Integration: every theorem and figure of the paper, machine-checked at
//! test-friendly bounds (the experiment binaries push the same checks to
//! larger universes).

use ccmm::core::constructible::BoundedConstructible;
use ccmm::core::enumerate::{all_observers, for_each_observer};
use ccmm::core::props::{any_extension, check_complete, check_constructible_aug, check_monotonic};
use ccmm::core::universe::Universe;
use ccmm::core::witness::{figure2, figure3, figure4_full, figure4_prefix};
use ccmm::core::{Lc, MemoryModel, Model, Nn, Op, Sc};
use std::ops::ControlFlow;

#[test]
fn definition_3_every_model_contains_the_empty_pair() {
    let c = ccmm::core::Computation::empty();
    let phi = ccmm::core::ObserverFunction::empty();
    for m in Model::ALL {
        assert!(m.contains(&c, &phi));
    }
}

#[test]
fn theorem_14_16_last_writer_unique_valid_and_in_all_models() {
    // For every computation of a small universe and every topological
    // sort, W_T is a valid observer function (Thm 16) in every model that
    // admits last-writer functions (SC ⊆ everything).
    let u = Universe::new(3, 1);
    let _ = u.for_each_computation(|c| {
        for t in ccmm::dag::topo::all_topo_sorts(c.dag()) {
            let phi = ccmm::core::last_writer::last_writer_function(c, &t);
            assert!(phi.is_valid_for(c), "Thm 16 fails on {c:?}");
            assert!(
                ccmm::core::last_writer::is_last_writer_function(c, &t, &phi),
                "Thm 14 (definition agreement) fails"
            );
            for m in Model::ALL {
                assert!(m.contains(c, &phi), "{m} rejects W_T on {c:?}");
            }
        }
        ControlFlow::Continue(())
    });
}

#[test]
fn theorem_19_sc_lc_monotonic_constructible() {
    let u = Universe::new(3, 1);
    assert!(check_monotonic(&Sc, &u).is_ok());
    assert!(check_monotonic(&Lc, &u).is_ok());
    assert!(check_constructible_aug(&Sc, &u).is_ok());
    assert!(check_constructible_aug(&Lc, &u).is_ok());
    assert!(check_complete(&Sc, &u).is_ok());
    assert!(check_complete(&Lc, &u).is_ok());
}

#[test]
fn theorem_21_nn_is_strongest_dag_consistent() {
    // NN ⊆ Q-dag consistency for arbitrary predicates Q: sample three
    // exotic predicates plus the named ones.
    use ccmm::core::model::DynQ;
    let exotic = [
        DynQ::new("only-location-0", |_, l: ccmm::core::Location, _, _, _| l.index() == 0),
        DynQ::new("middle-is-even", |_, _, _, v: ccmm::dag::NodeId, _| v.index().is_multiple_of(2)),
        DynQ::new(
            "endpoint-parity",
            |_, _, u: Option<ccmm::dag::NodeId>, _, w: ccmm::dag::NodeId| {
                u.is_none_or(|u| (u.index() + w.index()).is_multiple_of(2))
            },
        ),
    ];
    let u = Universe::new(3, 1);
    let _ = u.for_each_computation(|c| {
        let _ = for_each_observer(c, |phi| {
            if Nn::default().contains(c, phi) {
                for q in &exotic {
                    assert!(q.contains(c, phi), "NN ⊄ {}", q.name());
                }
                for m in [Model::Nw, Model::Wn, Model::Ww] {
                    assert!(m.contains(c, phi));
                }
            }
            ControlFlow::Continue(())
        });
        ControlFlow::Continue(())
    });
}

#[test]
fn theorem_22_lc_strictly_inside_nn() {
    let u = Universe::new(4, 1);
    let cmp = ccmm::core::relation::compare(&Lc, &Nn::default(), &u);
    assert_eq!(cmp.relation, ccmm::core::relation::Relation::StrictlyStronger);
    // The canonical strictness witness is exactly Figure 4's prefix.
    let w = figure4_prefix();
    assert!(Nn::default().contains(&w.computation, &w.phi));
    assert!(!Lc.contains(&w.computation, &w.phi));
}

#[test]
fn theorem_23_lc_equals_nn_star_bounded() {
    let u = Universe::new(4, 1);
    let fix = BoundedConstructible::compute(&Nn::default(), &u);
    for n in 0..u.max_nodes {
        let a = fix.agreement_with(&Lc, n, &u);
        assert_eq!(a.disagreements, 0, "size {n}");
    }
}

#[test]
fn figure_2_and_3_membership_patterns() {
    let f2 = figure2();
    assert!(Model::Ww.contains(&f2.computation, &f2.phi));
    assert!(Model::Nw.contains(&f2.computation, &f2.phi));
    assert!(!Model::Wn.contains(&f2.computation, &f2.phi));
    assert!(!Model::Nn.contains(&f2.computation, &f2.phi));

    let f3 = figure3();
    assert!(Model::Ww.contains(&f3.computation, &f3.phi));
    assert!(Model::Wn.contains(&f3.computation, &f3.phi));
    assert!(!Model::Nw.contains(&f3.computation, &f3.phi));
    assert!(!Model::Nn.contains(&f3.computation, &f3.phi));
}

#[test]
fn figure_4_nonconstructibility() {
    let w = figure4_prefix();
    assert!(Nn::default().contains(&w.computation, &w.phi));
    for op in [Op::Read(ccmm::core::Location::new(0)), Op::Nop] {
        let full = figure4_full(op);
        assert!(
            !any_extension(&full, &w.phi, |p| Nn::default().contains(&full, p)),
            "non-write extension must be blocked"
        );
    }
    let full_w = figure4_full(Op::Write(ccmm::core::Location::new(0)));
    assert!(any_extension(&full_w, &w.phi, |p| Nn::default().contains(&full_w, p)));
}

#[test]
fn completeness_of_all_models_follows_from_lc() {
    // Section 6: LC complete + weaker-than relations ⇒ all dag-consistent
    // models complete. Verify the implication concretely: every
    // computation has an LC observer, which is then in every weaker model.
    let u = Universe::new(3, 1);
    let _ = u.for_each_computation(|c| {
        let obs = all_observers(c);
        let lc_member = obs.iter().find(|phi| Lc.contains(c, phi));
        let phi = lc_member.expect("LC must be complete");
        for m in [Model::Nn, Model::Nw, Model::Wn, Model::Ww, Model::Any] {
            assert!(m.contains(c, phi));
        }
        ControlFlow::Continue(())
    });
}
