//! Property-based tests of the dag substrate: reachability versus DFS,
//! closure/reduction invariants, topological-sort enumeration, prefixes,
//! and series-parallel lowering.

use ccmm::dag::{topo, BitSet, Dag, NodeId, Reachability, SpExpr};
use proptest::prelude::*;

fn make_dag(n: usize, edge_bits: &[bool]) -> Dag {
    let mut edges = Vec::new();
    let mut k = 0;
    for i in 0..n {
        for j in i + 1..n {
            if edge_bits[k] {
                edges.push((i, j));
            }
            k += 1;
        }
    }
    Dag::from_edges(n, &edges).expect("forward edges")
}

fn arb_dag(max_n: usize) -> impl Strategy<Value = Dag> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(any::<bool>(), n * (n - 1) / 2)
            .prop_map(move |bits| make_dag(n, &bits))
    })
}

/// Reference reachability by DFS.
fn dfs_reaches(d: &Dag, from: NodeId, to: NodeId) -> bool {
    let mut stack = vec![from];
    let mut seen = BitSet::new(d.node_count());
    while let Some(u) = stack.pop() {
        for &v in d.successors(u) {
            if v == to {
                return true;
            }
            if !seen.contains(v.index()) {
                seen.insert(v.index());
                stack.push(v);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reachability_matches_dfs(d in arb_dag(9)) {
        let r = Reachability::new(&d);
        for u in d.nodes() {
            for v in d.nodes() {
                prop_assert_eq!(r.reaches(u, v), dfs_reaches(&d, u, v), "{} -> {}", u, v);
            }
        }
    }

    #[test]
    fn closure_of_reduction_is_closure(d in arb_dag(8)) {
        let closure = d.transitive_closure();
        let red = d.transitive_reduction();
        prop_assert_eq!(red.transitive_closure(), closure.clone());
        // Reduction is a relaxation of the original; closure contains it.
        prop_assert!(red.is_relaxation_of(&d));
        prop_assert!(d.is_relaxation_of(&closure));
    }

    #[test]
    fn reduction_is_minimal(d in arb_dag(7)) {
        // Removing any edge from the reduction changes reachability.
        let red = d.transitive_reduction();
        let closure = d.transitive_closure();
        for (u, v) in red.edges() {
            let smaller = red.without_edge(u, v).unwrap();
            prop_assert!(
                smaller.transitive_closure() != closure,
                "edge {}->{} was redundant in the reduction", u, v
            );
        }
    }

    #[test]
    fn enumerated_topo_sorts_are_exactly_the_valid_permutations(d in arb_dag(5)) {
        use std::collections::HashSet;
        let enumerated: HashSet<Vec<NodeId>> =
            topo::all_topo_sorts(&d).into_iter().collect();
        // Brute force over all permutations.
        let n = d.node_count();
        let mut perm: Vec<NodeId> = d.nodes().collect();
        let mut count = 0usize;
        // Heap's algorithm, iterative.
        let mut cs = vec![0usize; n];
        let check = |p: &Vec<NodeId>| {
            if topo::is_topological_sort(&d, p) {
                assert!(enumerated.contains(p), "missing sort {p:?}");
                1
            } else {
                0
            }
        };
        count += check(&perm);
        let mut i = 0;
        while i < n {
            if cs[i] < i {
                if i % 2 == 0 {
                    perm.swap(0, i);
                } else {
                    perm.swap(cs[i], i);
                }
                count += check(&perm);
                cs[i] += 1;
                i = 0;
            } else {
                cs[i] = 0;
                i += 1;
            }
        }
        prop_assert_eq!(count, enumerated.len());
    }

    #[test]
    fn prefix_sets_are_downward_closed(d in arb_dag(8), bits in proptest::collection::vec(any::<bool>(), 8)) {
        // Downward-close an arbitrary subset; the result must be a prefix.
        let n = d.node_count();
        let r = Reachability::new(&d);
        let mut keep = BitSet::new(n);
        for u in 0..n {
            if bits.get(u).copied().unwrap_or(false) {
                keep.insert(u);
                keep.union_with(r.ancestors(NodeId::new(u)));
            }
        }
        prop_assert!(d.is_prefix_set(&keep));
        let (sub, map) = d.induced_subgraph(&keep);
        prop_assert_eq!(sub.node_count(), keep.len());
        // Map preserves order.
        for w in map.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn augmentation_makes_unique_sink(d in arb_dag(7)) {
        let a = d.augment();
        prop_assert_eq!(a.node_count(), d.node_count() + 1);
        let f = NodeId::new(d.node_count());
        prop_assert_eq!(a.leaves(), vec![f]);
        let r = Reachability::new(&a);
        prop_assert_eq!(r.ancestors(f).len(), d.node_count());
    }

    #[test]
    fn random_topo_sorts_are_valid(d in arb_dag(10), seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let t = topo::random_topo_sort(&d, &mut rng);
        prop_assert!(topo::is_topological_sort(&d, &t));
    }
}

fn arb_sp() -> impl Strategy<Value = SpExpr> {
    let leaf = Just(SpExpr::Leaf);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.then(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.par(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sp_lowering_invariants(e in arb_sp()) {
        let sp = e.build();
        prop_assert_eq!(sp.dag.node_count(), e.node_count());
        prop_assert_eq!(sp.leaves.len(), e.leaf_count());
        // Single source and sink.
        prop_assert_eq!(sp.dag.roots(), vec![sp.source]);
        prop_assert_eq!(sp.dag.leaves(), vec![sp.sink]);
        // Source reaches everything; everything reaches sink.
        let r = Reachability::new(&sp.dag);
        for u in sp.dag.nodes() {
            prop_assert!(r.reaches_eq(sp.source, u));
            prop_assert!(r.reaches_eq(u, sp.sink));
        }
    }
}
