//! Counter-pinned regression tests for the incremental online-reveal
//! path. Telemetry counters are process-global, so this binary holds a
//! single `#[test]` — running these assertions alongside other tests
//! (which also count reveals and probes) would make the pins flaky.
//!
//! Two regressions are pinned:
//!
//! * `OnlineSession::reveal` routes through `Computation::push` — a
//!   long session performs **zero** full-DAG clones (the legacy
//!   `extend`-per-reveal path cloned the dag, ops, closure, and write
//!   index on every node).
//! * `reveal` early-exits at the first admissible row, while
//!   `reveal_choose` deliberately enumerates every admissible row for
//!   its chooser — the probe counter must show the drop.

use ccmm::core::online::OnlineSession;
use ccmm::core::telemetry::{self, Counter};
use ccmm::core::{AnyObserver, Location, Op};
use ccmm::dag::NodeId;

#[test]
fn reveal_sessions_do_zero_dag_clones_and_probe_minimally() {
    telemetry::set_enabled(true);
    let l = Location::new(0);

    // A write-then-reads chain, revealed node by node. In release this
    // runs the full 10^5-reveal regression; debug keeps the dense
    // closure's quadratic growth affordable.
    let n: usize = if cfg!(debug_assertions) { 10_000 } else { 100_000 };
    telemetry::snapshot_and_reset();
    let mut game = OnlineSession::new(AnyObserver, 1);
    game.reveal(&[], Op::Write(l)).expect("root write");
    for i in 1..n {
        game.reveal(&[NodeId::new(i - 1)], Op::Read(l)).expect("chain read");
    }
    let snap = telemetry::snapshot_and_reset();
    assert_eq!(
        snap[Counter::DagClones as usize],
        0,
        "a {n}-reveal session must not clone the DAG even once"
    );
    assert_eq!(snap[Counter::OnlineReveals as usize], n as u64);
    let fast_probes_long = snap[Counter::OnlineProbes as usize];
    assert_eq!(
        fast_probes_long, n as u64,
        "the fast path commits the first admissible row: one probe per reveal"
    );

    // Probe-count drop: identical reveal sequences through the fast
    // path and through collect-all `reveal_choose`. Writes every 8th
    // node grow the candidate sets, so the collect-all cost compounds.
    let k: usize = 64;
    let op_at = |i: usize| if i.is_multiple_of(8) { Op::Write(l) } else { Op::Read(l) };

    telemetry::snapshot_and_reset();
    let mut fast = OnlineSession::new(AnyObserver, 1);
    fast.reveal(&[], op_at(0)).expect("root");
    for i in 1..k {
        fast.reveal(&[NodeId::new(i - 1)], op_at(i)).expect("fast reveal");
    }
    let fast_probes = telemetry::snapshot_and_reset()[Counter::OnlineProbes as usize];

    let mut choose = OnlineSession::new(AnyObserver, 1);
    choose.reveal_choose(&[], op_at(0), |_| 0).expect("root");
    for i in 1..k {
        choose.reveal_choose(&[NodeId::new(i - 1)], op_at(i), |_| 0).expect("choose reveal");
    }
    let snap = telemetry::snapshot_and_reset();
    let choose_probes = snap[Counter::OnlineProbes as usize];
    assert_eq!(snap[Counter::DagClones as usize], 0, "reveal_choose also stays in place");

    assert_eq!(fast_probes, k as u64, "early exit: one probe per reveal");
    assert!(
        choose_probes >= 2 * fast_probes,
        "collect-all must probe every admissible row: {choose_probes} vs {fast_probes}"
    );
    // Both paths commit the same greedy (first-row) choice, so the
    // sessions end in identical states.
    assert_eq!(fast.observer(), choose.observer());
    telemetry::set_enabled(false);
}
