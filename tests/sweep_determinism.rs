//! Pins the sweep engine's determinism contract across thread counts:
//! counts AND witnesses must be bit-identical to the serial scan at
//! `CCMM_THREADS` ∈ {1, 2, 4, 7}, both when the count is passed
//! explicitly and when it arrives through the environment variable.
//!
//! Everything lives in ONE test function: `CCMM_THREADS` is process
//! global, and the test harness runs `#[test]` functions concurrently —
//! two tests mutating the variable would race.

use ccmm::core::model::Model;
use ccmm::core::relation::compare;
use ccmm::core::sweep::{compare_par, sweep_computations, SweepConfig};
use ccmm::core::universe::Universe;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

#[test]
fn sweeps_are_bit_identical_to_serial_at_every_thread_count() {
    let u = Universe::new(3, 1);
    let serial = compare(&Model::Lc, &Model::Nn, &u);
    let serial_counts: usize =
        sweep_computations(&u, &SweepConfig::serial(), || 0usize, |acc, _, _, _| *acc += 1)
            .expect_complete("serial counting sweep")
            .iter()
            .sum();
    assert_eq!(serial_counts, u.count_computations());

    for threads in THREAD_COUNTS {
        // Explicit thread count.
        let cfg = SweepConfig::with_threads(threads);
        check_identical(&serial, &compare_par(&Model::Lc, &Model::Nn, &u, &cfg), threads);
        let counts: usize = sweep_computations(&u, &cfg, || 0usize, |acc, _, _, _| *acc += 1)
            .expect_complete("counting sweep")
            .iter()
            .sum();
        assert_eq!(counts, serial_counts, "count drift at {threads} threads");

        // Same thread count by way of CCMM_THREADS.
        std::env::set_var("CCMM_THREADS", threads.to_string());
        let env_cfg = SweepConfig::from_env();
        assert_eq!(env_cfg.threads, threads, "CCMM_THREADS not honoured");
        check_identical(&serial, &compare_par(&Model::Lc, &Model::Nn, &u, &env_cfg), threads);
    }
    std::env::remove_var("CCMM_THREADS");

    // Garbage and empty values fall back to available parallelism (≥ 1).
    std::env::set_var("CCMM_THREADS", "not-a-number");
    assert!(SweepConfig::from_env().threads >= 1);
    std::env::set_var("CCMM_THREADS", "0");
    assert!(SweepConfig::from_env().threads >= 1, "zero threads must be rejected");
    std::env::remove_var("CCMM_THREADS");
}

#[test]
fn canonical_sweep_is_bit_identical_at_bound_4() {
    // The symmetry-reduced sweep must reproduce the labelled scan's
    // model-membership counts AND witnesses exactly, at 1/2/4 threads —
    // the acceptance bar for enumerating only canonical representatives.
    let u = Universe::new(4, 1);
    let serial = compare(&Model::Lc, &Model::Nn, &u);
    let closed = u.count_computations_closed();
    for threads in [1, 2, 4] {
        let cfg = SweepConfig::with_threads(threads).canonical(true);
        check_identical(&serial, &compare_par(&Model::Lc, &Model::Nn, &u, &cfg), threads);
        let weighted: u128 =
            sweep_computations(&u, &cfg, || 0u128, |acc, _, _, w| *acc += w as u128)
                .expect_complete("weighted sweep")
                .iter()
                .sum();
        assert_eq!(weighted, closed, "orbit-weighted total drift at {threads} threads");
    }
}

fn check_identical(
    serial: &ccmm::core::relation::Comparison,
    par: &ccmm::core::relation::Comparison,
    threads: usize,
) {
    assert_eq!(serial.relation, par.relation, "relation drift at {threads} threads");
    assert_eq!(serial.both, par.both, "count drift at {threads} threads");
    assert_eq!(serial.a_total, par.a_total, "count drift at {threads} threads");
    assert_eq!(serial.b_total, par.b_total, "count drift at {threads} threads");
    assert_eq!(serial.pairs_checked, par.pairs_checked, "visit drift at {threads} threads");
    // Witnesses must be the serial scan's first witnesses, exactly.
    assert_eq!(serial.a_only, par.a_only, "a_only witness drift at {threads} threads");
    assert_eq!(serial.b_only, par.b_only, "b_only witness drift at {threads} threads");
}
