#!/usr/bin/env bash
# Local CI: the tier-1 gate plus formatting and lint checks.
#
#   ./ci.sh        # everything
#   ./ci.sh fast   # skip the release build (debug tests + fmt + clippy)
set -euo pipefail
cd "$(dirname "$0")"

fast=${1:-}

if [[ "$fast" != "fast" ]]; then
    echo "== tier-1 gate: release build =="
    cargo build --release
fi

echo "== tier-1 gate: tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== conformance smoke: fast checkers vs oracles =="
# Seeded-mutation self-test first (proves the harness can catch a bug),
# then the bounded sweep + 200 random cases + harvested executions.
# Exits nonzero with the shrunk witness printed inline on any
# disagreement. Budget: well under 60s (about 1s in debug).
if [[ "$fast" != "fast" ]]; then
    ./target/release/ccmm conformance --self-test
else
    cargo run -q --bin ccmm -- conformance --self-test
fi

if [[ "$fast" != "fast" ]]; then
    echo "== perf smoke: bound-4 canonical sweep vs committed baseline =="
    # Appends a fresh record to BENCH_sweep.json and fails if membership
    # throughput fell more than 2x below the latest committed record of
    # the same shape. Skipped in fast mode: debug-build timings are noise.
    ./target/release/ccmm sweep --bound 4 --canonical --gate
fi

echo "== robustness smoke: panic quarantine + kill/resume round trip =="
# Timings from these faulted runs are meaningless: point CCMM_BENCH_JSON
# at a scratch file so they never pollute the committed baseline.
if [[ "$fast" != "fast" ]]; then
    ccmm() { ./target/release/ccmm "$@"; }
    ccmm_bin=./target/release/ccmm
else
    ccmm() { cargo run -q --bin ccmm -- "$@"; }
    # The serve smoke TERMs the daemon by pid, so it needs the real
    # binary, not a shell function (killing the wrapper subshell would
    # orphan the daemon instead of draining it).
    cargo build -q --bin ccmm
    ccmm_bin=./target/debug/ccmm
fi
scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
export CCMM_BENCH_JSON="$scratch/bench.json"

# 1. Injected persistent panic: the sweep must complete degraded (exit 3)
#    with the quarantined task reported and all phases still run.
rc=0
ccmm sweep --bound 3 --canonical --threads 2 --fault panic-at-task=1 \
    > "$scratch/degraded.out" 2>/dev/null || rc=$?
[[ "$rc" == 3 ]] || { echo "expected degraded exit 3, got $rc"; exit 1; }
grep -q "quarantined: memberships task 1" "$scratch/degraded.out"
grep -q "sweep status: degraded" "$scratch/degraded.out"

# 2. Kill after two checkpoint records (exit 70), then --resume: the
#    membership counts must be bit-identical to an uninterrupted run.
ccmm sweep --bound 4 --canonical --threads 2 > "$scratch/clean.out" 2>/dev/null
rc=0
ccmm sweep --bound 4 --canonical --threads 2 --ckpt "$scratch/sweep.ckpt" \
    --ckpt-every 1 --fault kill-after-ckpt=2 > "$scratch/killed.out" 2>/dev/null || rc=$?
[[ "$rc" == 70 ]] || { echo "expected killed exit 70, got $rc"; exit 1; }
ccmm sweep --bound 4 --canonical --threads 2 --resume "$scratch/sweep.ckpt" \
    > "$scratch/resumed.out" 2>/dev/null
counts() { grep -A6 "^memberships over" "$1" | tail -6; }
diff <(counts "$scratch/clean.out") <(counts "$scratch/resumed.out") \
    || { echo "resumed counts differ from the uninterrupted run"; exit 1; }

echo "== lane engine smoke: scalar parity, thread determinism, kill/resume =="
# The lane64 engine must produce bit-identical membership counts to the
# scalar canonical engine at bound 5, at 1, 2, and 4 threads — and a
# lane run killed mid-flight must resume to the same counts. Debug-build
# bound-5 sweeps are slow, so fast mode drops to bound 4 (same paths).
lane_bound=5
[[ "$fast" == "fast" ]] && lane_bound=4
ccmm sweep --bound "$lane_bound" --canonical --threads 1 \
    > "$scratch/lane-scalar.out" 2>/dev/null
for t in 1 2 4; do
    ccmm sweep --bound "$lane_bound" --canonical --engine lane64 --threads "$t" \
        > "$scratch/lane-$t.out" 2>/dev/null
    diff <(counts "$scratch/lane-scalar.out") <(counts "$scratch/lane-$t.out") \
        || { echo "lane64 counts diverge from scalar at $t threads"; exit 1; }
done
rc=0
ccmm sweep --bound "$lane_bound" --canonical --engine lane64 --threads 2 \
    --ckpt "$scratch/lane.ckpt" --ckpt-every 1 --fault kill-after-ckpt=2 \
    > /dev/null 2>&1 || rc=$?
[[ "$rc" == 70 ]] || { echo "expected lane64 killed exit 70, got $rc"; exit 1; }
ccmm sweep --bound "$lane_bound" --canonical --engine lane64 --threads 2 \
    --resume "$scratch/lane.ckpt" > "$scratch/lane-resumed.out" 2>/dev/null
diff <(counts "$scratch/lane-scalar.out") <(counts "$scratch/lane-resumed.out") \
    || { echo "resumed lane64 counts differ from the scalar run"; exit 1; }

echo "== lane fixpoint smoke: bound-4 kill in both phases, resume bit-identical =="
# The lane Δ* fixpoint journals survivor masks to <ckpt>.fixpoint. The
# canonical bound-4 universe is 25 tasks, so --ckpt-every 16 writes
# exactly one record per phase: run 1 is killed by the memberships
# record; run 2 resumes, finishes memberships without a new record (9
# tasks < 16), and is killed by the fixpoint journal's first record; run
# 3 resumes the masks and must complete with survivor counts
# bit-identical to both an uninterrupted lane run and the scalar
# worklist.
fixline() { sed -n 's/.*fixpoint: \(.*\) \[.*/\1/p' "$1"; }
ccmm sweep --bound 4 --canonical --threads 2 --engine lane64 \
    > "$scratch/fix-clean.out" 2>/dev/null
rc=0
ccmm sweep --bound 4 --canonical --threads 2 --engine lane64 \
    --ckpt "$scratch/fix.ckpt" --ckpt-every 16 --fault kill-after-ckpt=1 \
    > /dev/null 2>&1 || rc=$?
[[ "$rc" == 70 ]] || { echo "expected memberships-phase kill exit 70, got $rc"; exit 1; }
rc=0
ccmm sweep --bound 4 --canonical --threads 2 --engine lane64 \
    --resume "$scratch/fix.ckpt" --ckpt-every 16 --fault kill-after-ckpt=1 \
    > "$scratch/fix-killed.out" 2>/dev/null || rc=$?
[[ "$rc" == 70 ]] || { echo "expected fixpoint-phase kill exit 70, got $rc"; exit 1; }
grep -q "fixpoint checkpoint record" "$scratch/fix-killed.out" \
    || { echo "second kill did not land in the fixpoint phase"; exit 1; }
ccmm sweep --bound 4 --canonical --threads 2 --engine lane64 \
    --resume "$scratch/fix.ckpt" > "$scratch/fix-resumed.out" 2>/dev/null
diff <(fixline "$scratch/fix-clean.out") <(fixline "$scratch/fix-resumed.out") \
    || { echo "resumed lane fixpoint differs from the uninterrupted run"; exit 1; }
diff <(fixline "$scratch/clean.out") <(fixline "$scratch/fix-resumed.out") \
    || { echo "lane fixpoint differs from the scalar worklist"; exit 1; }

echo "== stress smoke: perturbed-executor conformance + seeded-mutation self-test =="
# The self-test proves the oracle has teeth (a seeded skip-reconcile
# mutation must be caught and shrunk, and the same seeds must pass
# unmutated); then a fixed-seed 200-iteration perturbed run at 4 threads
# must hold LC conformance end to end. Both are deterministic per
# (seed, iters, threads), so a failure here is replayable verbatim.
ccmm stress --self-test --seed 1 --iters 1 --threads 4 > "$scratch/stress-self.out" \
    || { cat "$scratch/stress-self.out"; echo "stress self-test failed"; exit 1; }
grep -q "caught, and clean executor passes" "$scratch/stress-self.out"
ccmm stress --seed 20260808 --iters 200 --threads 4 > "$scratch/stress.out" \
    || { cat "$scratch/stress.out"; echo "stress smoke failed"; exit 1; }
grep -q "completed 200/200" "$scratch/stress.out"

echo "== telemetry smoke: counters deterministic across thread counts =="
# --metrics counter values for the memberships and fixpoint phases must
# be bit-identical at 1, 2, and 4 threads (DESIGN.md §9); the lattice and
# constructibility phases early-exit and are coverage-dependent, so they
# are excluded. The trace file must be valid JSONL.
for t in 1 2 4; do
    ccmm sweep --bound 4 --canonical --threads "$t" \
        --metrics "$scratch/metrics-$t.json" --trace "$scratch/trace-$t.jsonl" \
        > /dev/null 2>&1
    jq -e . "$scratch/metrics-$t.json" > /dev/null \
        || { echo "metrics-$t.json is not valid JSON"; exit 1; }
    jq -es . "$scratch/trace-$t.jsonl" > /dev/null \
        || { echo "trace-$t.jsonl is not valid JSONL"; exit 1; }
    jq -S '[.phases[] | select(.name == "memberships" or .name == "fixpoint")
            | {name, counters}]' "$scratch/metrics-$t.json" > "$scratch/det-$t.json"
done
pairs=$(jq '.phases[0].counters.pairs_checked' "$scratch/metrics-1.json")
[[ "$pairs" -gt 0 ]] || { echo "pairs_checked is zero — counters not recording"; exit 1; }
for t in 2 4; do
    diff "$scratch/det-1.json" "$scratch/det-$t.json" \
        || { echo "deterministic-phase counters drifted at $t threads"; exit 1; }
done

# Same pin for the lane64 engine: the fixpoint phase's lane counters
# (lane_fixpoint_words, lane_deletions_masked, lane_survivor_pop) are in
# the deterministic class and must not drift with the thread count.
for t in 1 2 4; do
    ccmm sweep --bound 4 --canonical --engine lane64 --threads "$t" \
        --metrics "$scratch/lane-metrics-$t.json" > /dev/null 2>&1
    jq -S '[.phases[] | select(.name == "memberships" or .name == "fixpoint")
            | {name, counters}]' "$scratch/lane-metrics-$t.json" > "$scratch/lane-det-$t.json"
done
pop=$(jq '[.phases[] | select(.name == "fixpoint")
           | .counters.lane_survivor_pop] | first' "$scratch/lane-metrics-1.json")
[[ "$pop" -gt 0 ]] || { echo "lane_survivor_pop is zero — lane fixpoint counters not recording"; exit 1; }
for t in 2 4; do
    diff "$scratch/lane-det-1.json" "$scratch/lane-det-$t.json" \
        || { echo "lane fixpoint counters drifted at $t threads"; exit 1; }
done
echo "== watch smoke: streaming LC check, deadline kill + replay resume, gate =="
# A fib:16 trace streams clean through the lean BACKER executor with the
# on-the-fly checker (exit 0, zero streaming-vs-batch divergences); a
# skip-reconcile run must detect the LC violation (exit 1, batch still
# agreeing on every sampled prefix); a zero-deadline run exits 4 with a
# node frontier and its journal resumes to verdicts bit-identical to the
# uninterrupted run; and a repeat clean run gates its reveal throughput
# against the record the first one left in the scratch bench file.
ccmm watch --workload fib:16 > "$scratch/watch-clean.out" \
    || { cat "$scratch/watch-clean.out"; echo "watch clean run failed"; exit 1; }
grep -q "valid true | SC true | LC true" "$scratch/watch-clean.out"
grep -q " 0 divergence(s)" "$scratch/watch-clean.out"
rc=0
ccmm watch --workload fib:12 --fault skip-reconcile --sample-every 2 \
    > "$scratch/watch-fault.out" 2>/dev/null || rc=$?
[[ "$rc" == 1 ]] || { echo "expected faulted watch exit 1, got $rc"; exit 1; }
grep -q "LC false" "$scratch/watch-fault.out"
grep -q " 0 divergence(s)" "$scratch/watch-fault.out"
rc=0
ccmm watch --workload fib:16 --deadline-secs 0 --ckpt "$scratch/watch.ckpt" \
    > "$scratch/watch-part.out" 2>/dev/null || rc=$?
[[ "$rc" == 4 ]] || { echo "expected watch deadline exit 4, got $rc"; exit 1; }
grep -q "resume frontier: \[(0, " "$scratch/watch-part.out"
ccmm watch --workload fib:16 --resume "$scratch/watch.ckpt" \
    > "$scratch/watch-resumed.out" 2>/dev/null \
    || { echo "watch resume failed"; exit 1; }
verdicts() { grep -E "^(streamed|conformance:)" "$1"; }
diff <(verdicts "$scratch/watch-clean.out") <(verdicts "$scratch/watch-resumed.out") \
    || { echo "resumed watch verdicts differ from the uninterrupted run"; exit 1; }
ccmm watch --workload fib:16 --gate > "$scratch/watch-gate.out" \
    || { cat "$scratch/watch-gate.out"; echo "watch gate failed"; exit 1; }
grep -q "^gate: " "$scratch/watch-gate.out"
unset CCMM_BENCH_JSON

echo "== serve smoke: faulted daemon, concurrent queries, graceful drain =="
# 1. Self-test: an injected handler panic on request 0 must come back as
#    a structured degraded reply, and the *same connection* must serve
#    the next request normally.
ccmm serve --self-test > "$scratch/serve-self.out"
grep -q "caught: " "$scratch/serve-self.out"
grep -q "same connection served normally" "$scratch/serve-self.out"

# 2. Daemon under the chaos-soak fault plan: ~1 in 5 requests is
#    panicked, dropped, truncated, or delayed. Clients retry transport
#    faults; verdicts must still match every corpus expectation.
"$ccmm_bin" serve --addr 127.0.0.1:0 --metrics "$scratch/serve-metrics.json" \
    --fault "panic=1/13,drop=1/17,truncate=1/19,delay=1/29:1,seed=42" \
    > "$scratch/serve.out" 2>/dev/null &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "^listening on " "$scratch/serve.out" 2>/dev/null && break
    sleep 0.1
done
addr=$(sed -n 's/^listening on //p' "$scratch/serve.out")
[[ -n "$addr" ]] || { echo "serve never reported its address"; exit 1; }

# Fan the whole corpus out concurrently (one client per entry, plus a
# ping client), then check each served verdict table against the
# expectations the corpus file pins. A degraded reply (injected panic)
# exits 3; the client never retries a verdict-bearing reply itself, so
# the smoke re-asks — correctness says a re-ask can only ever produce
# the one true verdict table, and ten panics in a row is ~13^-10.
query_pids=()
for f in corpus/*.litmus; do
    stem="$scratch/$(basename "$f" .litmus)"
    awk '/^---$/{s++; next} s==0' "$f" > "$stem.comp"
    awk '/^---$/{s++; next} s==1' "$f" > "$stem.obs"
    (
        for _ in $(seq 1 10); do
            ccmm query --addr "$addr" --retries 10 --models "$stem.comp" "$stem.obs" \
                > "$stem.served" 2>/dev/null && exit 0
            [[ $? == 3 ]] || exit 1  # only a degraded reply is re-asked
        done
        exit 1
    ) &
    query_pids+=($!)
done
ccmm query --addr "$addr" --ping --retries 10 > "$scratch/ping.out" 2>/dev/null &
query_pids+=($!)
for pid in "${query_pids[@]}"; do
    wait "$pid" || { echo "a serve-smoke client failed"; exit 1; }
done
grep -qx "pong" "$scratch/ping.out"
for f in corpus/*.litmus; do
    stem="$scratch/$(basename "$f" .litmus)"
    awk '/^---$/{s++; next} s==2 && NF && $0 !~ /^#/' "$f" > "$stem.want"
    while read -r want; do
        grep -qxF "$want" "$stem.served" \
            || { echo "$f: served verdicts missing \"$want\""; \
                 cat "$stem.served"; exit 1; }
    done < "$stem.want"
done

# 3. SIGTERM → graceful drain: exit 0, stats printed, no leaked
#    connections (a leak makes the daemon itself exit nonzero).
kill -TERM "$serve_pid"
rc=0; wait "$serve_pid" || rc=$?
[[ "$rc" == 0 ]] || { echo "serve drain exited $rc"; cat "$scratch/serve.out"; exit 1; }
grep -q "drain requested" "$scratch/serve.out"
grep -q "drained: " "$scratch/serve.out"
grep -q "connections: " "$scratch/serve.out"
jq -e '.schema == "ccmm-metrics-v1"' "$scratch/serve-metrics.json" > /dev/null \
    || { echo "serve metrics lost the v1 schema tag"; exit 1; }
served=$(jq '[.phases[] | select(.name == "serve")
              | .counters.serve_requests] | first' "$scratch/serve-metrics.json")
[[ "$served" -gt 0 ]] || { echo "serve_requests counter is zero"; exit 1; }

echo "CI OK"
