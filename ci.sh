#!/usr/bin/env bash
# Local CI: the tier-1 gate plus formatting and lint checks.
#
#   ./ci.sh        # everything
#   ./ci.sh fast   # skip the release build (debug tests + fmt + clippy)
set -euo pipefail
cd "$(dirname "$0")"

fast=${1:-}

if [[ "$fast" != "fast" ]]; then
    echo "== tier-1 gate: release build =="
    cargo build --release
fi

echo "== tier-1 gate: tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
