#!/usr/bin/env bash
# Local CI: the tier-1 gate plus formatting and lint checks.
#
#   ./ci.sh        # everything
#   ./ci.sh fast   # skip the release build (debug tests + fmt + clippy)
set -euo pipefail
cd "$(dirname "$0")"

fast=${1:-}

if [[ "$fast" != "fast" ]]; then
    echo "== tier-1 gate: release build =="
    cargo build --release
fi

echo "== tier-1 gate: tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== conformance smoke: fast checkers vs oracles =="
# Seeded-mutation self-test first (proves the harness can catch a bug),
# then the bounded sweep + 200 random cases + harvested executions.
# Exits nonzero with the shrunk witness printed inline on any
# disagreement. Budget: well under 60s (about 1s in debug).
if [[ "$fast" != "fast" ]]; then
    ./target/release/ccmm conformance --self-test
else
    cargo run -q --bin ccmm -- conformance --self-test
fi

if [[ "$fast" != "fast" ]]; then
    echo "== perf smoke: bound-4 canonical sweep vs committed baseline =="
    # Appends a fresh record to BENCH_sweep.json and fails if membership
    # throughput fell more than 2x below the latest committed record of
    # the same shape. Skipped in fast mode: debug-build timings are noise.
    ./target/release/ccmm sweep --bound 4 --canonical --gate
fi

echo "CI OK"
