//! `ccmm` — command-line front end to the computation-centric memory
//! model toolkit.
//!
//! ```text
//! ccmm models <computation-file> <observer-file>   memberships of a pair
//! ccmm check --model <m> <comp> <obs>              one membership, exit code
//! ccmm witness fig2|fig3|fig4                      the paper's figures
//! ccmm litmus [name]                               outcome tables per model
//! ccmm backer --workload fib:8 [--procs P] [--cache N] [--page B] [--runs K]
//! ccmm lattice [--nodes N]                         Figure 1 relation matrix
//! ccmm sweep [--bound N] [--canonical] [--gate]    exhaustive verification
//! ccmm conformance [--nodes N] [--self-test]       fast checkers vs oracles
//! ccmm serve [--addr A] [--fault SPEC]             membership query daemon
//! ccmm query --addr A --models <comp> <obs>        one query with retries
//! ccmm dot <computation-file>                      Graphviz export
//! ```
//!
//! Files use the text format of `ccmm_core::parse`; `-` reads stdin.

use ccmm::core::parse::{parse_computation, parse_observer, render_observer};
use ccmm::core::{Computation, Model};
use std::io::Read;
use std::process::ExitCode;

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn model_by_name(name: &str) -> Result<Model, String> {
    match name.to_ascii_lowercase().as_str() {
        "sc" => Ok(Model::Sc),
        "lc" => Ok(Model::Lc),
        "nn" => Ok(Model::Nn),
        "nw" => Ok(Model::Nw),
        "wn" => Ok(Model::Wn),
        "ww" => Ok(Model::Ww),
        "any" => Ok(Model::Any),
        other => Err(format!("unknown model `{other}` (sc|lc|nn|nw|wn|ww|any)")),
    }
}

fn load_pair(
    cpath: &str,
    opath: &str,
) -> Result<(Computation, ccmm::core::ObserverFunction), String> {
    let c = parse_computation(&read_input(cpath)?).map_err(|e| e.to_string())?;
    let phi = parse_observer(&read_input(opath)?, &c).map_err(|e| e.to_string())?;
    Ok((c, phi))
}

fn cmd_models(args: &[String]) -> Result<(), String> {
    let [cpath, opath] = args else {
        return Err("usage: ccmm models <computation> <observer>".into());
    };
    let (c, phi) = load_pair(cpath, opath)?;
    println!("{c:?}");
    println!("{}", render_observer(&phi).trim_end());
    println!();
    for m in Model::ALL {
        println!("{:<4} {}", m.name(), if m.contains(&c, &phi) { "∈" } else { "∉" });
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<bool, String> {
    let mut model = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--model" {
            let v = it.next().ok_or("--model needs a value")?;
            model = Some(model_by_name(v)?);
        } else {
            rest.push(a.clone());
        }
    }
    let model = model.ok_or("usage: ccmm check --model <m> <computation> <observer>")?;
    let [cpath, opath] = rest.as_slice() else {
        return Err("usage: ccmm check --model <m> <computation> <observer>".into());
    };
    let (c, phi) = load_pair(cpath, opath)?;
    let member = model.contains(&c, &phi);
    println!("{}: {}", model.name(), if member { "member" } else { "NOT a member" });
    Ok(member)
}

fn cmd_witness(args: &[String]) -> Result<(), String> {
    let which = args.first().map(String::as_str).unwrap_or("fig4");
    let w = match which {
        "fig2" => ccmm::core::witness::figure2(),
        "fig3" => ccmm::core::witness::figure3(),
        "fig4" => ccmm::core::witness::figure4_prefix(),
        other => return Err(format!("unknown witness `{other}` (fig2|fig3|fig4)")),
    };
    println!("# nodes: {}", w.names.join(", "));
    print!("{}", ccmm::core::parse::render_computation(&w.computation));
    println!("---");
    print!("{}", render_observer(&w.phi));
    println!("---");
    for m in Model::ALL {
        println!("{:<4} {}", m.name(), if m.contains(&w.computation, &w.phi) { "∈" } else { "∉" });
    }
    Ok(())
}

fn cmd_litmus(args: &[String]) -> Result<(), String> {
    let filter = args.first().map(String::as_str);
    let models = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];
    for t in ccmm::core::litmus::standard_tests() {
        if filter.is_some_and(|f| !t.name.eq_ignore_ascii_case(f)) {
            continue;
        }
        println!("=== {} ===", t.name);
        println!("{}", t.note);
        for m in models {
            let outs = t.outcomes(&m);
            println!("{:<4} {:>3} outcomes", m.name(), outs.len());
        }
        println!();
    }
    Ok(())
}

fn parse_workload(spec: &str) -> Result<Computation, String> {
    let (name, arg) = spec.split_once(':').unwrap_or((spec, ""));
    let k: usize = if arg.is_empty() { 8 } else { arg.parse().map_err(|_| "bad workload size")? };
    Ok(match name {
        "fib" => ccmm::cilk::fib(k as u32).computation,
        "matmul" => ccmm::cilk::matmul(k).computation,
        "stencil" => ccmm::cilk::stencil(k, 4).computation,
        "reduce" => ccmm::cilk::reduce(k).computation,
        "mergesort" => ccmm::cilk::mergesort(k).computation,
        other => return Err(format!("unknown workload `{other}`")),
    })
}

fn cmd_backer(args: &[String]) -> Result<(), String> {
    use ccmm::backer::{sim, BackerConfig, Schedule};
    use rand::SeedableRng;
    let mut workload = "fib:8".to_string();
    let mut procs = 4usize;
    let mut cache = 16usize;
    let mut page = 1usize;
    let mut runs = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--workload" => workload = take("--workload")?,
            "--procs" => procs = take("--procs")?.parse().map_err(|_| "bad --procs")?,
            "--cache" => cache = take("--cache")?.parse().map_err(|_| "bad --cache")?,
            "--page" => page = take("--page")?.parse().map_err(|_| "bad --page")?,
            "--runs" => runs = take("--runs")?.parse().map_err(|_| "bad --runs")?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let c = parse_workload(&workload)?;
    let shape = ccmm::dag::metrics::shape(c.dag());
    println!(
        "{workload}: {} nodes, height {}, width {}, {} locations",
        shape.nodes,
        shape.height,
        shape.width,
        c.num_locations()
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCC);
    let mut report = ccmm::backer::VerifyReport::default();
    let mut stats = ccmm::backer::Stats::default();
    for _ in 0..runs {
        let s = Schedule::work_stealing(&c, procs, &mut rng);
        let cfg = BackerConfig::with_processors(procs).cache_capacity(cache);
        let r = if page > 1 { sim::run_paged(&c, &s, &cfg, page) } else { sim::run(&c, &s, &cfg) };
        report.record(ccmm::backer::verify(&c, &r.observer));
        stats.merge(&r.stats);
    }
    println!(
        "{runs} runs on {procs} procs (cache {cache}, page {page}): \
         valid {}/{}, SC {}, LC {}, NN {}, WW {}",
        report.valid, report.runs, report.sc, report.lc, report.nn, report.ww
    );
    println!(
        "traffic: {} fetches, {} reconciles, {} flushes, hit rate {:.2}",
        stats.fetches,
        stats.reconciles,
        stats.flushes,
        stats.hit_rate()
    );
    if !report.all_lc() {
        return Err("BACKER produced a non-LC execution (bug!)".into());
    }
    Ok(())
}

fn cmd_lattice(args: &[String]) -> Result<(), String> {
    let mut nodes = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--nodes" {
            nodes = it.next().ok_or("--nodes needs a value")?.parse().map_err(|_| "bad --nodes")?;
        }
    }
    if nodes > 4 {
        return Err("--nodes > 4 is too slow for the CLI; use exp_fig1".into());
    }
    let u = ccmm::core::universe::Universe::new(nodes, 1);
    let models = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];
    print!("{:<4}", "");
    for b in models {
        print!("{:>4}", b.name());
    }
    println!();
    for a in models {
        print!("{:<4}", a.name());
        for b in models {
            print!("{:>4}", ccmm::core::relation::compare(&a, &b, &u).relation.to_string());
        }
        println!();
    }
    Ok(())
}

/// Exit codes distinguishing sweep outcomes (see `ccmm --help`):
/// 0 complete, 1 gate/check failure, 2 usage or I/O error, 3 degraded
/// (quarantined panics), 4 partial (deadline hit), 5 `--gate` without a
/// baseline, 70 killed by the fault plan.
mod exit {
    pub const COMPLETE: u8 = 0;
    pub const FAIL: u8 = 1;
    pub const DEGRADED: u8 = 3;
    pub const PARTIAL: u8 = 4;
    pub const NO_BASELINE: u8 = 5;
    /// `ccmm query`: retries exhausted against an overloaded or
    /// draining server.
    pub const OVERLOADED: u8 = 6;
    /// `ccmm query`: no reply at all (connect/read failures on every
    /// attempt).
    pub const TRANSPORT: u8 = 7;
    pub const KILLED: u8 = 70;
}

fn status_name(s: ccmm::core::sweep::supervisor::SweepStatus) -> &'static str {
    use ccmm::core::sweep::supervisor::SweepStatus;
    match s {
        SweepStatus::Complete => "complete",
        SweepStatus::Degraded => "degraded",
        SweepStatus::Partial => "partial",
        SweepStatus::Killed => "killed",
    }
}

fn report_quarantine(phase: &str, quarantined: &[ccmm::core::sweep::supervisor::Quarantined]) {
    for q in quarantined {
        println!(
            "quarantined: {phase} task {} (poset size {}) panicked twice: {}",
            q.task_idx, q.size, q.payload
        );
    }
}

/// Glue between the `--trace`/`--metrics`/`--progress` flags and
/// `ccmm_core::telemetry`: flips the runtime switches, collects one
/// counter snapshot per phase, and writes the output files.
///
/// Counter *values* for the memberships and fixpoint phases are
/// bit-identical across thread counts; wall times never are (see
/// DESIGN.md §9) — which is why `wall_ms` sits beside, not inside, each
/// phase's `counters` object.
struct TelemetrySink {
    command: &'static str,
    trace: Option<String>,
    metrics: Option<String>,
    phases: Vec<(&'static str, u128, [u64; ccmm::core::telemetry::NUM_COUNTERS])>,
}

impl TelemetrySink {
    /// Arms telemetry to match the flags. Counters and span events left
    /// over from earlier in the process are discarded so the first phase
    /// starts from zero.
    fn new(
        command: &'static str,
        trace: Option<String>,
        metrics: Option<String>,
        progress: bool,
    ) -> Self {
        use ccmm::core::telemetry;
        telemetry::set_enabled(trace.is_some() || metrics.is_some() || progress);
        telemetry::set_events(trace.is_some());
        telemetry::set_progress(progress);
        let _ = telemetry::snapshot_and_reset();
        let _ = telemetry::drain_events();
        TelemetrySink { command, trace, metrics, phases: Vec::new() }
    }

    /// Closes a phase: snapshots (and zeroes) every counter under `name`,
    /// so successive phases report disjoint counts.
    fn end_phase(&mut self, name: &'static str, wall: std::time::Duration) {
        self.phases.push((name, wall.as_millis(), ccmm::core::telemetry::snapshot_and_reset()));
    }

    /// Non-zero counters of the most recently closed phase, in snapshot
    /// order — the `SweepRecord.counters` payload. Empty (so the field is
    /// omitted from bench JSON) when telemetry is off.
    fn last_counters(&self) -> Vec<(String, u64)> {
        use ccmm::core::telemetry::Counter;
        let Some((_, _, snap)) = self.phases.last() else { return Vec::new() };
        Counter::ALL
            .iter()
            .filter(|c| snap[**c as usize] != 0)
            .map(|c| (c.name().to_string(), snap[*c as usize]))
            .collect()
    }

    /// Writes the metrics JSON and trace JSONL files, if requested.
    /// Called on every exit path (complete, partial, killed) so a
    /// truncated run still reports the phases it finished. Both counter
    /// names and span names are static identifiers, so the JSON needs no
    /// string escaping.
    fn write(&self) -> Result<(), String> {
        use ccmm::core::telemetry::{drain_events, Counter};
        use std::fmt::Write as _;
        if let Some(path) = &self.metrics {
            let mut s = format!(
                "{{\"schema\":\"ccmm-metrics-v1\",\"command\":\"{}\",\"phases\":[",
                self.command
            );
            for (i, (name, wall_ms, snap)) in self.phases.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"name\":\"{name}\",\"wall_ms\":{wall_ms},\"counters\":{{");
                let mut first = true;
                for c in Counter::ALL {
                    let v = snap[c as usize];
                    if v == 0 {
                        continue;
                    }
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    let _ = write!(s, "\"{}\":{v}", c.name());
                }
                s.push_str("}}");
            }
            s.push_str("]}\n");
            std::fs::write(path, s).map_err(|e| format!("writing metrics {path}: {e}"))?;
        }
        if let Some(path) = &self.trace {
            let mut s = String::new();
            for ev in drain_events() {
                let _ = writeln!(
                    s,
                    "{{\"span\":\"{}\",\"thread\":{},\"start_us\":{},\"end_us\":{}}}",
                    ev.name, ev.thread, ev.start_us, ev.end_us
                );
            }
            std::fs::write(path, s).map_err(|e| format!("writing trace {path}: {e}"))?;
        }
        Ok(())
    }
}

fn cmd_sweep(args: &[String]) -> Result<u8, String> {
    use ccmm::core::constructible::lanes::{decode_masks_journal, LaneConstructible};
    use ccmm::core::constructible::BoundedConstructible;
    use ccmm::core::fault::FaultPlan;
    use ccmm::core::sweep::supervisor::{
        check_constructible_aug_lanes_supervised, check_constructible_aug_supervised,
        decode_counts_snapshot, lattice_lanes_supervised, lattice_supervised,
        memberships_lanes_supervised, memberships_supervised, Supervisor, SweepStatus,
    };
    use ccmm::core::sweep::SweepConfig;
    use ccmm::core::universe::Universe;
    use ccmm::core::{ckpt, MemoryModel, Nn};
    use ccmm_bench::report::{emit, latest_matching, SweepRecord};
    use std::time::Instant;

    let mut bound = 4usize;
    let mut locs = 1usize;
    let mut canonical = false;
    let mut alloc = false;
    let mut engine_flag: Option<String> = None;
    let mut gate = false;
    let mut threads: Option<usize> = None;
    let mut deadline_secs: Option<f64> = None;
    let mut fault_spec: Option<String> = None;
    let mut ckpt_path: Option<String> = None;
    let mut ckpt_every = 16usize;
    let mut resume_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut progress = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--bound" => bound = take("--bound")?.parse().map_err(|_| "bad --bound")?,
            "--trace" => trace_path = Some(take("--trace")?),
            "--metrics" => metrics_path = Some(take("--metrics")?),
            "--progress" => progress = true,
            "--locs" => locs = take("--locs")?.parse().map_err(|_| "bad --locs")?,
            "--canonical" => canonical = true,
            "--alloc" => alloc = true,
            "--engine" => engine_flag = Some(take("--engine")?),
            "--gate" => gate = true,
            "--threads" => {
                threads = Some(take("--threads")?.parse().map_err(|_| "bad --threads")?);
            }
            "--deadline-secs" => {
                deadline_secs =
                    Some(take("--deadline-secs")?.parse().map_err(|_| "bad --deadline-secs")?);
            }
            "--fault" => fault_spec = Some(take("--fault")?),
            "--ckpt" => ckpt_path = Some(take("--ckpt")?),
            "--ckpt-every" => {
                ckpt_every = take("--ckpt-every")?.parse().map_err(|_| "bad --ckpt-every")?;
                if ckpt_every == 0 {
                    return Err("--ckpt-every must be at least 1".into());
                }
            }
            "--resume" => resume_path = Some(take("--resume")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    let lane = match engine_flag.as_deref() {
        None | Some("scalar") => false,
        Some("lane64") => true,
        Some(other) => return Err(format!("unknown --engine `{other}` (scalar | lane64)")),
    };
    if lane && !canonical {
        return Err("--engine lane64 requires --canonical (lane packs ride the symmetry-reduced \
                    task list)"
            .to_string());
    }
    if lane && alloc {
        return Err("--alloc is the scalar pre-scratch baseline; it cannot be combined with \
                    --engine lane64"
            .to_string());
    }
    if bound > 5 && !lane {
        return Err(format!(
            "--bound {bound} is out of reach for the scalar engine, which supports all phases \
             (memberships, lattice, fixpoint, constructibility) only up to --bound 5 \
             (357 → 4824 posets); use --canonical --engine lane64, which runs every phase \
             through --bound 6 and the memberships phase alone beyond"
        ));
    }
    // The lane engine's mask representation keeps the Δ* fixpoint and
    // constructibility phases within budget through bound 6; beyond that
    // only the lane-parallel memberships phase is.
    let memberships_only = bound > 6;
    if ckpt_path.is_some() && resume_path.is_some() {
        return Err(
            "--ckpt starts a fresh journal and --resume continues one; pass only one".to_string()
        );
    }
    let supervised_flags = deadline_secs.is_some()
        || fault_spec.is_some()
        || ckpt_path.is_some()
        || resume_path.is_some();
    if alloc && supervised_flags {
        return Err("--alloc is a baseline timing mode; it cannot be combined with \
                    --deadline-secs/--fault/--ckpt/--resume"
            .to_string());
    }
    let fault = match &fault_spec {
        Some(spec) => FaultPlan::from_spec(spec)?,
        None => FaultPlan::none(),
    };
    let sup = Supervisor::with_fault(fault);
    let mut cfg = match threads {
        Some(t) => SweepConfig::with_threads(t),
        None => SweepConfig::from_env(),
    }
    .canonical(canonical);
    if let Some(secs) = deadline_secs {
        cfg = cfg.deadline(std::time::Duration::from_secs_f64(secs));
    }
    // `--alloc` measures the pre-scratch membership path (fresh checker
    // state allocated per pair) so BENCH_sweep.json can hold the baseline
    // the canonical+scratch engine is compared against.
    let engine = if lane {
        "lane64"
    } else {
        match (canonical, alloc) {
            (true, false) => "canonical",
            (true, true) => "canonical-alloc",
            (false, false) => "labelled",
            (false, true) => "labelled-alloc",
        }
    };
    let u = Universe::new(bound, locs);

    // Gate precondition checked up front: a gated run that has nothing to
    // compare against must not silently record itself as the baseline.
    // Matching is same-engine AND same-thread-count: gating a 4-thread
    // run against a 1-thread baseline would pass on scaling alone.
    let baseline = latest_matching("cli_sweep/memberships", engine, &u, cfg.threads);
    if gate && baseline.is_none() {
        eprintln!("error: no baseline for this config — run without --gate to record one");
        return Ok(exit::NO_BASELINE);
    }

    // Checkpoint journal: `--ckpt` starts one, `--resume` validates an
    // existing journal's fingerprint and continues from its last
    // snapshot. The fingerprint pins the exact sweep configuration so a
    // journal can never be resumed into a different universe.
    let fingerprint =
        format!("ccmm-sweep-v1 bound={bound} locs={locs} canonical={canonical} engine={engine}");
    let mut writer: Option<ckpt::CkptWriter> = None;
    let mut resume_state = None;
    if let Some(path) = &ckpt_path {
        writer = Some(
            ckpt::CkptWriter::create(std::path::Path::new(path), &fingerprint)
                .map_err(|e| format!("creating checkpoint {path}: {e}"))?,
        );
    }
    if let Some(path) = &resume_path {
        let loaded = ckpt::Checkpoint::load(std::path::Path::new(path))
            .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
        if loaded.fingerprint != fingerprint {
            return Err(format!(
                "checkpoint fingerprint mismatch: journal is `{}`, this run is `{fingerprint}`",
                loaded.fingerprint
            ));
        }
        resume_state = match loaded.latest() {
            Some(snap) => Some(
                decode_counts_snapshot(snap)
                    .ok_or_else(|| format!("corrupt checkpoint snapshot in {path}"))?,
            ),
            None => None, // journal died before the first snapshot
        };
        writer = Some(
            ckpt::CkptWriter::append_to(std::path::Path::new(path))
                .map_err(|e| format!("reopening checkpoint {path}: {e}"))?,
        );
        if let Some((f, _)) = &resume_state {
            println!("resuming from {path}: {} task(s) already complete", f.len());
        }
    }

    let mut tel = TelemetrySink::new("sweep", trace_path, metrics_path, progress);
    println!(
        "sweep: bound {bound}, {locs} location(s), {} computations, {engine} enumeration, {} thread(s)",
        u.count_computations_closed(),
        cfg.threads
    );
    let models = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];
    let mut records = Vec::new();
    let mut worst = SweepStatus::Complete;

    // Phase 1: weighted membership counts for every model. The weighted
    // pair total is the labelled universe's pair count regardless of
    // enumeration mode, so pairs/sec is comparable across engines — the
    // number the perf gate watches. This is the checkpointable phase.
    let t0 = Instant::now();
    let phase_span = ccmm::core::telemetry::span("sweep/memberships");
    let out = if alloc {
        // Baseline timing mode: the pre-scratch path. The per-task
        // accumulators are folded commutatively, so the totals (and the
        // supervision verdict the sweep now reports) match the
        // supervised path's.
        use ccmm::core::enumerate::for_each_observer;
        use ccmm::core::sweep::supervisor::CountsState;
        use ccmm::core::sweep::sweep_computations;
        use std::ops::ControlFlow;
        sweep_computations(
            &u,
            &cfg,
            || CountsState::new(models.len()),
            |acc, _, c, w| {
                let _ = for_each_observer(c, |phi| {
                    acc.pairs += w;
                    for (i, m) in models.iter().enumerate() {
                        acc.per_model[i] += w * m.contains(c, phi) as u64;
                    }
                    ControlFlow::Continue(())
                });
            },
        )
        .map(|per_task| {
            let mut total = CountsState::new(models.len());
            for cs in per_task {
                total.pairs += cs.pairs;
                for (i, n) in cs.per_model.iter().enumerate() {
                    total.per_model[i] += n;
                }
            }
            total
        })
    } else if lane {
        memberships_lanes_supervised(
            &models,
            &u,
            &cfg,
            &sup,
            resume_state,
            writer.as_mut().map(|w| (w, ckpt_every)),
        )
    } else {
        memberships_supervised(
            &models,
            &u,
            &cfg,
            &sup,
            resume_state,
            writer.as_mut().map(|w| (w, ckpt_every)),
        )
    };
    drop(phase_span);
    let wall = t0.elapsed();
    tel.end_phase("memberships", wall);
    if let Some(e) = &out.ckpt_error {
        eprintln!("warning: checkpoint journalling failed mid-sweep: {e}");
    }
    report_quarantine("memberships", &out.quarantined);
    if out.status == SweepStatus::Killed {
        let journal = ckpt_path.as_deref().or(resume_path.as_deref()).unwrap_or("<journal>");
        println!(
            "killed by fault plan after {} checkpoint record(s); resume with --resume {journal}",
            writer.as_ref().map_or(0, |w| w.snapshots())
        );
        tel.write()?;
        return Ok(exit::KILLED);
    }
    worst = worst.max(out.status);
    println!(
        "memberships over {} (computation, observer) pairs [{:.2?}] ({}):",
        out.value.pairs,
        wall,
        status_name(out.status)
    );
    for (m, n) in models.iter().zip(&out.value.per_model) {
        println!("  {:<4} {n}", m.name());
    }
    let membership = SweepRecord::new(
        "cli_sweep/memberships",
        engine,
        &u,
        cfg.threads,
        wall,
        out.value.pairs,
        0,
    )
    .with_status(status_name(out.status))
    .with_counters(tel.last_counters());
    let throughput = membership.pairs_per_sec;
    records.push(membership);
    if out.status == SweepStatus::Partial {
        // Deadline hit: report the exact resume frontier and stop — the
        // later phases would blow the budget the caller just set.
        println!(
            "deadline hit: {}/{} task(s) complete; resume frontier: {:?}",
            out.frontier.len(),
            out.total_tasks,
            out.frontier.ranges()
        );
        if let Some(path) = ckpt_path.as_deref().or(resume_path.as_deref()) {
            println!("resume with --resume {path}");
        }
        let path = emit(&records).map_err(|e| format!("writing bench json: {e}"))?;
        println!("recorded {} sweep record(s) to {path}", records.len());
        tel.write()?;
        return Ok(exit::PARTIAL);
    }

    if memberships_only {
        println!(
            "bound {bound} runs the memberships phase only; the lattice, fixpoint, and \
             constructibility phases need bound ≤ 6 with --engine lane64 (≤ 5 scalar)"
        );
        tel.write()?;
        let path = emit(&records).map_err(|e| format!("writing bench json: {e}"))?;
        println!("recorded {} sweep record(s) to {path}", records.len());
        if gate && worst == SweepStatus::Complete {
            let b = baseline.as_ref().expect("gate precondition checked above");
            println!(
                "gate: {throughput:.0} pairs/sec vs baseline {:.0} (threshold {:.0})",
                b.pairs_per_sec,
                b.pairs_per_sec / 2.0
            );
            if throughput < b.pairs_per_sec / 2.0 {
                eprintln!(
                    "perf gate FAILED: {throughput:.0} pairs/sec is more than 2x below \
                     the committed baseline {:.0}",
                    b.pairs_per_sec
                );
                return Ok(exit::FAIL);
            }
        } else if gate {
            println!(
                "gate: skipped — run was {} (only complete runs are gated)",
                status_name(worst)
            );
        }
        println!("sweep status: {}", status_name(worst));
        return Ok(match worst {
            SweepStatus::Complete => exit::COMPLETE,
            SweepStatus::Degraded => exit::DEGRADED,
            SweepStatus::Partial => exit::PARTIAL,
            SweepStatus::Killed => exit::KILLED,
        });
    }

    // Phase 2: the full pairwise relation lattice (Figure 1 at this
    // bound), under the same supervisor (the fault plan spans all
    // phases; a task-indexed fault re-fires wherever that index recurs).
    // The lane engine decides lattice cells through the same verdict-mask
    // kernels as phase 1.
    let t0 = Instant::now();
    let phase_span = ccmm::core::telemetry::span("sweep/lattice");
    let lat = if lane {
        lattice_lanes_supervised(&models, &u, &cfg, &sup)
    } else {
        lattice_supervised(&models, &u, &cfg, &sup)
    };
    drop(phase_span);
    let wall = t0.elapsed();
    tel.end_phase("lattice", wall);
    report_quarantine("lattice", &lat.quarantined);
    worst = worst.max(lat.status);
    println!("lattice [{:.2?}] ({}):", wall, status_name(lat.status));
    print!("{:<6}", "");
    for m in &models {
        print!("{:>4}", m.name());
    }
    println!();
    for row in &lat.value {
        print!("  {:<4}", row.name);
        for r in &row.relations {
            print!("{:>4}", r.to_string());
        }
        println!();
    }
    records.push(
        SweepRecord::new("cli_sweep/lattice", engine, &u, cfg.threads, wall, 0, 0)
            .with_status(status_name(lat.status)),
    );

    // Phase 3: constructibility. The NN Δ* fixpoint (labelled by
    // necessity — survivor sets are keyed by concrete computations), then
    // the one-step augmentation check for every model. The lane engine
    // runs the mask-based fixpoint, which checkpoints to its own journal
    // (`<path>.fixpoint`) beside the memberships journal: the fingerprint
    // is engine-free because the mask bits are identical either way, so a
    // fixpoint journal written under one kernel resumes under the other.
    let t0 = Instant::now();
    let phase_span = ccmm::core::telemetry::span("sweep/fixpoint");
    let fix_engine = if lane { "lane64" } else { "worklist" };
    let (fix_pairs, fix_deleted, fix_passes, fix_status) = if lane {
        let fix_fingerprint = format!("ccmm-fixpoint-v1 bound={bound} locs={locs} model=nn");
        let journal_base = ckpt_path.as_deref().or(resume_path.as_deref());
        let mut fix_writer: Option<ckpt::CkptWriter> = None;
        let mut fix_resume = None;
        let fix_journal = journal_base.map(|base| format!("{base}.fixpoint"));
        if let Some(p) = &fix_journal {
            let path = std::path::Path::new(p);
            if resume_path.is_some() && path.exists() {
                let loaded = ckpt::Checkpoint::load(path)
                    .map_err(|e| format!("loading fixpoint checkpoint {p}: {e}"))?;
                if loaded.fingerprint != fix_fingerprint {
                    return Err(format!(
                        "fixpoint checkpoint fingerprint mismatch: journal is `{}`, this run \
                         is `{fix_fingerprint}`",
                        loaded.fingerprint
                    ));
                }
                fix_resume = Some(
                    decode_masks_journal(&loaded)
                        .ok_or_else(|| format!("corrupt fixpoint checkpoint in {p}"))?,
                );
                fix_writer = Some(
                    ckpt::CkptWriter::append_to(path)
                        .map_err(|e| format!("reopening fixpoint checkpoint {p}: {e}"))?,
                );
                if let Some((f, _)) = &fix_resume {
                    println!("resuming fixpoint from {p}: {} task(s) already complete", f.len());
                }
            } else {
                fix_writer = Some(
                    ckpt::CkptWriter::create(path, &fix_fingerprint)
                        .map_err(|e| format!("creating fixpoint checkpoint {p}: {e}"))?,
                );
            }
        }
        let out = LaneConstructible::compute_supervised(
            &Nn::default(),
            &u,
            &cfg,
            &sup,
            fix_resume,
            fix_writer.as_mut().map(|w| (w, ckpt_every)),
            true,
        );
        drop(phase_span);
        let wall = t0.elapsed();
        tel.end_phase("fixpoint", wall);
        if let Some(e) = &out.ckpt_error {
            eprintln!("warning: fixpoint checkpoint journalling failed mid-sweep: {e}");
        }
        report_quarantine("fixpoint", &out.quarantined);
        if out.status == SweepStatus::Killed {
            let journal = fix_journal.as_deref().unwrap_or("<journal>");
            println!(
                "killed by fault plan after {} fixpoint checkpoint record(s); resume with \
                 --resume {}",
                fix_writer.as_ref().map_or(0, |w| w.snapshots()),
                ckpt_path.as_deref().or(resume_path.as_deref()).unwrap_or(journal)
            );
            tel.write()?;
            return Ok(exit::KILLED);
        }
        if out.status == SweepStatus::Partial {
            println!(
                "deadline hit during fixpoint: {}/{} task(s) complete; resume frontier: {:?}",
                out.frontier.len(),
                out.total_tasks,
                out.frontier.ranges()
            );
            if let Some(path) = ckpt_path.as_deref().or(resume_path.as_deref()) {
                println!("resume with --resume {path}");
            }
            let path = emit(&records).map_err(|e| format!("writing bench json: {e}"))?;
            println!("recorded {} sweep record(s) to {path}", records.len());
            tel.write()?;
            return Ok(exit::PARTIAL);
        }
        (out.value.total_pairs(), out.value.deleted, out.value.passes, out.status)
    } else {
        let fix =
            BoundedConstructible::compute_worklist_supervised(&Nn::default(), &u, &cfg, &sup.fault);
        drop(phase_span);
        let wall = t0.elapsed();
        tel.end_phase("fixpoint", wall);
        report_quarantine("fixpoint", &fix.quarantined);
        let fix_status =
            if fix.quarantined.is_empty() { SweepStatus::Complete } else { SweepStatus::Degraded };
        (fix.total_pairs(), fix.deleted, fix.passes, fix_status)
    };
    let wall = t0.elapsed();
    worst = worst.max(fix_status);
    println!(
        "NN* {} fixpoint: {} surviving pairs, {} deleted, {} pass(es) [{:.2?}] ({})",
        fix_engine,
        fix_pairs,
        fix_deleted,
        fix_passes,
        wall,
        status_name(fix_status)
    );
    records.push(
        SweepRecord::new(
            "cli_sweep/nnstar_worklist",
            fix_engine,
            &u,
            cfg.threads,
            wall,
            fix_pairs as u64,
            fix_passes,
        )
        .with_status(status_name(fix_status)),
    );
    let t0 = Instant::now();
    let phase_span = ccmm::core::telemetry::span("sweep/constructibility");
    let mut cons_status = SweepStatus::Complete;
    for m in &models {
        let check = if lane {
            check_constructible_aug_lanes_supervised(m, &u, &cfg, &sup)
        } else {
            check_constructible_aug_supervised(m, &u, &cfg, &sup)
        };
        report_quarantine("constructibility", &check.quarantined);
        cons_status = cons_status.max(check.status);
        worst = worst.max(check.status);
        match check.value {
            None => println!("  {:<4} constructible up to bound {bound}", m.name()),
            Some(w) => println!(
                "  {:<4} NOT constructible: dead end at {} nodes appending {:?}",
                m.name(),
                w.c.node_count(),
                w.op
            ),
        }
    }
    drop(phase_span);
    let wall = t0.elapsed();
    tel.end_phase("constructibility", wall);
    println!("constructibility checks [{wall:.2?}]");
    // The constructibility record's work unit is the fixed bounded-prefix
    // scan size (computations at bound − 1 times models checked), so its
    // pairs/sec is comparable across engines at the same config.
    let cons_work = Universe::new(bound.saturating_sub(1), locs).count_computations_closed() as u64
        * models.len() as u64;
    records.push(
        SweepRecord::new("cli_sweep/constructibility", engine, &u, cfg.threads, wall, cons_work, 0)
            .with_status(status_name(cons_status)),
    );
    tel.write()?;

    // Phase baselines are read before this run's records are emitted —
    // emitting first would make every gated run its own baseline.
    let phase_baselines: Vec<_> =
        [("cli_sweep/nnstar_worklist", fix_engine), ("cli_sweep/constructibility", engine)]
            .into_iter()
            .map(|(experiment, phase_engine)| {
                (experiment, latest_matching(experiment, phase_engine, &u, cfg.threads))
            })
            .collect();
    let path = emit(&records).map_err(|e| format!("writing bench json: {e}"))?;
    println!("recorded {} sweep record(s) to {path}", records.len());
    if gate && worst == SweepStatus::Complete {
        // `baseline` was verified Some before the sweep started.
        let b = baseline.expect("gate precondition checked above");
        println!(
            "gate: {throughput:.0} pairs/sec vs baseline {:.0} (threshold {:.0})",
            b.pairs_per_sec,
            b.pairs_per_sec / 2.0
        );
        if throughput < b.pairs_per_sec / 2.0 {
            eprintln!(
                "perf gate FAILED: {throughput:.0} pairs/sec is more than 2x below \
                 the committed baseline {:.0}",
                b.pairs_per_sec
            );
            return Ok(exit::FAIL);
        }
        // The fixpoint and constructibility phases gate against their
        // own same-engine, same-thread-count baselines when one exists
        // (only the memberships baseline is a gate precondition, so the
        // new phases phase in without invalidating older baselines).
        for (experiment, b) in phase_baselines {
            let Some(rec) = records.iter().find(|r| r.experiment == experiment) else {
                continue;
            };
            let Some(b) = b else { continue };
            println!(
                "gate[{experiment}]: {:.0} pairs/sec vs baseline {:.0} (threshold {:.0})",
                rec.pairs_per_sec,
                b.pairs_per_sec,
                b.pairs_per_sec / 2.0
            );
            if rec.pairs_per_sec < b.pairs_per_sec / 2.0 {
                eprintln!(
                    "perf gate FAILED: {experiment} at {:.0} pairs/sec is more than 2x below \
                     the committed baseline {:.0}",
                    rec.pairs_per_sec, b.pairs_per_sec
                );
                return Ok(exit::FAIL);
            }
        }
    } else if gate {
        println!("gate: skipped — run was {} (only complete runs are gated)", status_name(worst));
    }
    println!("sweep status: {}", status_name(worst));
    Ok(match worst {
        SweepStatus::Complete => exit::COMPLETE,
        SweepStatus::Degraded => exit::DEGRADED,
        SweepStatus::Partial => exit::PARTIAL,
        SweepStatus::Killed => exit::KILLED,
    })
}

fn cmd_conformance(args: &[String]) -> Result<bool, String> {
    use ccmm::conformance::{report, run, self_test, HarnessConfig};
    use ccmm::core::sweep::SweepConfig;
    let mut cfg = HarnessConfig::default();
    let mut out: Option<String> = None;
    let mut do_self_test = false;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut progress = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--nodes" => cfg.max_nodes = take("--nodes")?.parse().map_err(|_| "bad --nodes")?,
            "--locs" => {
                cfg.num_locations = take("--locs")?.parse().map_err(|_| "bad --locs")?;
            }
            "--random" => {
                cfg.random_cases = take("--random")?.parse().map_err(|_| "bad --random")?;
            }
            "--seed" => cfg.seed = take("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--no-harvest" => cfg.harvest = false,
            "--threads" => {
                let t: usize = take("--threads")?.parse().map_err(|_| "bad --threads")?;
                cfg.sweep = SweepConfig::with_threads(t);
            }
            "--out" => out = Some(take("--out")?),
            "--self-test" => do_self_test = true,
            "--canonical" => cfg.sweep = cfg.sweep.canonical(true),
            "--trace" => trace_path = Some(take("--trace")?),
            "--metrics" => metrics_path = Some(take("--metrics")?),
            "--progress" => progress = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.max_nodes > 5 {
        return Err("--nodes > 5 is too slow for the CLI (factorial oracles)".into());
    }
    if cfg.max_nodes >= 5 && !cfg.sweep.canonical {
        // The labelled bound-5 sweep is 90 202 computations against
        // factorial oracles; only the symmetry-reduced enumeration keeps
        // it CLI-tolerable. The report below prints the pair/check counts
        // actually run (canonical representatives, not weighted totals).
        cfg.sweep = cfg.sweep.canonical(true);
        println!(
            "note: nodes >= 5 sweeps canonical representatives only \
             (one per isomorphism class; checker-vs-oracle verdicts are \
             isomorphism-invariant)"
        );
    }
    if do_self_test {
        // Prove the pipeline catches a seeded bug before trusting a pass.
        self_test(&cfg).map_err(|e| format!("self-test FAILED: {e}"))?;
        println!("self-test: seeded LC mutation caught and shrunk — harness is live");
    }
    // Armed after the self-test so its checks don't pollute the report.
    let mut tel = TelemetrySink::new("conformance", trace_path, metrics_path, progress);
    let t0 = std::time::Instant::now();
    let r = run(&cfg);
    tel.end_phase("conformance", t0.elapsed());
    // The lane differential rides the same config: contains_lanes must
    // agree with 64× contains_with over the exhaustive sweep plus random
    // partial packings.
    let t1 = std::time::Instant::now();
    let lanes = ccmm::conformance::run_lanes(&cfg);
    tel.end_phase("lane-differential", t1.elapsed());
    // The fixpoint differential pins the lane Δ* engine (survivor masks,
    // both Stage-A kernels) to the scalar worklist, and the lane
    // constructibility search to the scalar scan one bound up.
    let t2 = std::time::Instant::now();
    let fix = ccmm::conformance::run_fixpoint(&cfg);
    tel.end_phase("fixpoint-differential", t2.elapsed());
    // The serve differential drives the same pair sources through the
    // full wire pipeline (frame → parse → cached handler → reply) and
    // compares every verdict line against a direct check.
    let t3 = std::time::Instant::now();
    let srv_cfg = ccmm::conformance::ServeHarnessConfig {
        max_nodes: cfg.max_nodes.min(3),
        num_locations: cfg.num_locations,
        random: cfg.random_cases.min(256),
        seed: cfg.seed,
        ..Default::default()
    };
    let srv = ccmm::conformance::run_serve(&srv_cfg);
    tel.end_phase("serve-differential", t3.elapsed());
    tel.write()?;
    println!("{r}");
    println!(
        "lane differential: {} verdicts over {} lane words, {} mismatch(es)",
        lanes.verdicts,
        lanes.words,
        lanes.mismatches.len()
    );
    for m in lanes.mismatches.iter().take(8) {
        println!("  {m}");
    }
    println!(
        "fixpoint differential: {} survivor pairs, {} constructibility verdicts, {} mismatch(es)",
        fix.pairs,
        fix.verdicts,
        fix.mismatches.len()
    );
    for m in fix.mismatches.iter().take(8) {
        println!("  {m}");
    }
    println!(
        "serve differential: {} pairs, {} verdicts, {} cache rechecks, {} mismatch(es)",
        srv.pairs,
        srv.checks,
        srv.cache_rechecks,
        srv.mismatches.len()
    );
    for m in srv.mismatches.iter().take(8) {
        println!("  [{}] {}", m.source, m.detail);
    }
    for (i, d) in r.disagreements.iter().enumerate() {
        println!();
        print!("{}", report::render_witness(d));
        if let Some(dir) = &out {
            let (litmus, dot) = report::write_witness(std::path::Path::new(dir), i, d)
                .map_err(|e| format!("writing witness: {e}"))?;
            println!("# written to {} and {}", litmus.display(), dot.display());
        }
    }
    Ok(r.ok() && lanes.ok() && fix.ok() && srv.ok())
}

fn cmd_stress(args: &[String]) -> Result<u8, String> {
    use ccmm::core::ckpt;
    use ccmm::core::fault::{FaultPlan, PerturbPlan};
    use ccmm::core::parse::{render_computation, render_observer};
    use ccmm::core::sweep::supervisor::SweepStatus;
    use ccmm::stress::{self, Mutation, StressCkpt, StressConfig};
    use std::time::Instant;

    let mut seed = 0u64;
    let mut iters = 1000usize;
    let mut threads = 4usize;
    let mut perturb_spec: Option<String> = None;
    let mut mutation = Mutation::None;
    let mut deadline_secs: Option<f64> = None;
    let mut fault_spec: Option<String> = None;
    let mut ckpt_path: Option<String> = None;
    let mut ckpt_every = 32usize;
    let mut resume_path: Option<String> = None;
    let mut do_self_test = false;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut progress = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--seed" => seed = take("--seed")?.parse().map_err(|_| "bad --seed")?,
            "--iters" => iters = take("--iters")?.parse().map_err(|_| "bad --iters")?,
            "--threads" => threads = take("--threads")?.parse().map_err(|_| "bad --threads")?,
            "--perturb" => perturb_spec = Some(take("--perturb")?),
            "--mutate" => mutation = Mutation::from_name(&take("--mutate")?)?,
            "--deadline-secs" => {
                deadline_secs =
                    Some(take("--deadline-secs")?.parse().map_err(|_| "bad --deadline-secs")?);
            }
            "--fault" => fault_spec = Some(take("--fault")?),
            "--ckpt" => ckpt_path = Some(take("--ckpt")?),
            "--ckpt-every" => {
                ckpt_every = take("--ckpt-every")?.parse().map_err(|_| "bad --ckpt-every")?;
                if ckpt_every == 0 {
                    return Err("--ckpt-every must be at least 1".into());
                }
            }
            "--resume" => resume_path = Some(take("--resume")?),
            "--self-test" => do_self_test = true,
            "--metrics" => metrics_path = Some(take("--metrics")?),
            "--trace" => trace_path = Some(take("--trace")?),
            "--progress" => progress = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if ckpt_path.is_some() && resume_path.is_some() {
        return Err(
            "--ckpt starts a fresh journal and --resume continues one; pass only one".to_string()
        );
    }

    if do_self_test {
        // Prove the oracle has teeth before trusting a green run: a
        // seeded skip-reconcile mutation must be caught and the same
        // seeds must pass unmutated.
        print!("stress self-test (mutation: skip-reconcile, {threads} thread(s)) ... ");
        match stress::self_test(threads) {
            Ok(()) => println!("caught, and clean executor passes"),
            Err(e) => {
                println!("FAILED");
                eprintln!("{e}");
                return Ok(exit::FAIL);
            }
        }
    }

    let mut cfg = StressConfig::new(seed, iters, threads);
    if let Some(spec) = &perturb_spec {
        cfg.perturb = PerturbPlan::from_spec(spec)?;
    }
    cfg.mutation = mutation;
    if let Some(secs) = deadline_secs {
        cfg.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    let fault = match &fault_spec {
        Some(spec) => FaultPlan::from_spec(spec)?,
        None => FaultPlan::none(),
    };

    // Checkpoint journal: same scheme as `ccmm sweep` — the fingerprint
    // pins (seed, iters, threads, perturb shape, mutation) so a journal
    // cannot resume into a different run.
    let fingerprint = cfg.fingerprint();
    let mut writer: Option<ckpt::CkptWriter> = None;
    let mut resume_state = None;
    if let Some(path) = &ckpt_path {
        writer = Some(
            ckpt::CkptWriter::create(std::path::Path::new(path), &fingerprint)
                .map_err(|e| format!("creating checkpoint {path}: {e}"))?,
        );
    }
    if let Some(path) = &resume_path {
        let loaded = ckpt::Checkpoint::load(std::path::Path::new(path))
            .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
        if loaded.fingerprint != fingerprint {
            return Err(format!(
                "checkpoint fingerprint mismatch: journal is `{}`, this run is `{fingerprint}`",
                loaded.fingerprint
            ));
        }
        resume_state = match loaded.latest() {
            Some(snap) => Some(
                stress::decode_snapshot(snap)
                    .ok_or_else(|| format!("corrupt checkpoint snapshot in {path}"))?,
            ),
            None => None,
        };
        writer = Some(
            ckpt::CkptWriter::append_to(std::path::Path::new(path))
                .map_err(|e| format!("reopening checkpoint {path}: {e}"))?,
        );
        if let Some((f, _)) = &resume_state {
            println!("resuming from {path}: {} iteration(s) already complete", f.len());
        }
    }

    let mut tel = TelemetrySink::new("stress", trace_path, metrics_path, progress);
    println!(
        "stress: seed {seed}, {iters} iteration(s), {threads} thread(s), perturb {}, mutation {}",
        cfg.perturb,
        cfg.mutation.name()
    );
    let t0 = Instant::now();
    let phase_span = ccmm::core::telemetry::span("stress/iterations");
    let sink = writer.as_mut().map(|w| StressCkpt { writer: w, every: ckpt_every });
    let report = stress::run_supervised(&cfg, &fault, resume_state, sink);
    drop(phase_span);
    let wall = t0.elapsed();
    tel.end_phase("iterations", wall);
    tel.write()?;

    if let Some(e) = &report.ckpt_error {
        eprintln!("warning: checkpoint journalling failed mid-run: {e}");
    }
    for q in &report.quarantined {
        println!("quarantined: iteration {} panicked twice: {}", q.task_idx, q.payload);
    }
    // Deterministic per (seed, iters, threads): iteration and check
    // counts, and any failure. Timing-dependent (reported, never
    // compared): distinct observers and the SC tallies.
    println!(
        "completed {}/{} iteration(s), {} conformance check(s) [{wall:.2?}] ({})",
        report.frontier.len(),
        report.total,
        report.checks,
        status_name(report.status)
    );
    println!(
        "timing-dependent: {} distinct threaded observer(s); SC membership {}/{}",
        report.distinct_observers, report.sc_member, report.sc_checked
    );

    if let Some(f) = report.failures.first() {
        println!(
            "CONFORMANCE FAILURE at iteration {} (leg: {}, workload: {}, kind: {})",
            f.iteration, f.leg, f.workload, f.kind
        );
        let mutate_flag = match cfg.mutation {
            Mutation::None => String::new(),
            m => format!(" --mutate {}", m.name()),
        };
        println!(
            "failing seed: {} (rerun: ccmm stress --seed {} --iters 1 --threads {threads}{})",
            f.seed, f.seed, mutate_flag
        );
        println!("shrunk trace ({} move(s)):", f.shrink_steps);
        print!("{}", render_computation(&f.c));
        print!("{}", render_observer(&f.phi));
        return Ok(exit::FAIL);
    }
    if report.status == SweepStatus::Killed {
        let journal = ckpt_path.as_deref().or(resume_path.as_deref()).unwrap_or("<journal>");
        println!(
            "killed by fault plan after {} checkpoint record(s); resume with --resume {journal}",
            writer.as_ref().map_or(0, |w| w.snapshots())
        );
        return Ok(exit::KILLED);
    }
    if report.status == SweepStatus::Partial {
        println!(
            "deadline hit: {}/{} iteration(s) complete; resume frontier: {:?}",
            report.frontier.len(),
            report.total,
            report.frontier.ranges()
        );
        if let Some(path) = ckpt_path.as_deref().or(resume_path.as_deref()) {
            println!("resume with --resume {path}");
        }
        return Ok(exit::PARTIAL);
    }
    Ok(match report.status {
        SweepStatus::Complete => exit::COMPLETE,
        SweepStatus::Degraded => exit::DEGRADED,
        SweepStatus::Partial => exit::PARTIAL,
        SweepStatus::Killed => exit::KILLED,
    })
}

fn cmd_watch(args: &[String]) -> Result<u8, String> {
    use ccmm::backer::FaultInjection;
    use ccmm::core::ckpt;
    use ccmm::core::sweep::supervisor::SweepStatus;
    use ccmm::watch::{self, WatchCkpt, WatchConfig};
    use ccmm_bench::report::{emit, latest_matching_shape, SweepRecord};
    use std::time::Instant;

    let mut workload = "fib:14".to_string();
    let mut procs = 4usize;
    let mut cache_lines = 16usize;
    let mut block = 16usize;
    let mut faults = FaultInjection::NONE;
    let mut deadline_secs: Option<f64> = None;
    let mut sample_every = 8usize;
    let mut sample_cap = 24usize;
    let mut ckpt_path: Option<String> = None;
    let mut ckpt_every = 65_536usize;
    let mut resume_path: Option<String> = None;
    let mut gate = false;
    let mut metrics_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut progress = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--workload" => workload = take("--workload")?,
            "--procs" => procs = take("--procs")?.parse().map_err(|_| "bad --procs")?,
            "--cache" => cache_lines = take("--cache")?.parse().map_err(|_| "bad --cache")?,
            "--block" => block = take("--block")?.parse().map_err(|_| "bad --block")?,
            "--fault" => {
                faults = match take("--fault")?.as_str() {
                    "none" => FaultInjection::NONE,
                    "skip-flush" => FaultInjection { skip_flush: true, skip_reconcile: false },
                    "skip-reconcile" => FaultInjection { skip_flush: false, skip_reconcile: true },
                    other => {
                        return Err(format!(
                            "unknown fault `{other}` (none | skip-flush | skip-reconcile)"
                        ))
                    }
                }
            }
            "--deadline-secs" => {
                deadline_secs =
                    Some(take("--deadline-secs")?.parse().map_err(|_| "bad --deadline-secs")?);
            }
            "--sample-every" => {
                sample_every = take("--sample-every")?.parse().map_err(|_| "bad --sample-every")?;
            }
            "--sample-cap" => {
                sample_cap = take("--sample-cap")?.parse().map_err(|_| "bad --sample-cap")?;
            }
            "--ckpt" => ckpt_path = Some(take("--ckpt")?),
            "--ckpt-every" => {
                ckpt_every = take("--ckpt-every")?.parse().map_err(|_| "bad --ckpt-every")?;
                if ckpt_every == 0 {
                    return Err("--ckpt-every must be at least 1".into());
                }
            }
            "--resume" => resume_path = Some(take("--resume")?),
            "--gate" => gate = true,
            "--metrics" => metrics_path = Some(take("--metrics")?),
            "--trace" => trace_path = Some(take("--trace")?),
            "--progress" => progress = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if procs == 0 {
        return Err("--procs must be at least 1".into());
    }
    if ckpt_path.is_some() && resume_path.is_some() {
        return Err(
            "--ckpt starts a fresh journal and --resume continues one; pass only one".to_string()
        );
    }

    let trace = watch::parse_trace_workload(&workload)?;
    let mut cfg = WatchConfig::new(&workload);
    cfg.procs = procs;
    cfg.cache_lines = cache_lines;
    cfg.block = block;
    cfg.faults = faults;
    cfg.sample_every = sample_every;
    cfg.sample_cap = sample_cap;
    if let Some(secs) = deadline_secs {
        cfg.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }

    // Gate precondition up front, as in `sweep`: a gated run with no
    // baseline must not silently record itself as one.
    let total = trace.node_count();
    let baseline = latest_matching_shape(
        &format!("watch/{workload}"),
        "stream",
        total as u64,
        trace.num_locations as u64,
        procs as u64,
    );
    if gate && baseline.is_none() {
        eprintln!("error: no baseline for this config — run without --gate to record one");
        return Ok(exit::NO_BASELINE);
    }

    // Checkpoint journal: the fingerprint pins everything that makes the
    // replay-based resume deterministic.
    let fingerprint = cfg.fingerprint();
    let mut writer: Option<ckpt::CkptWriter> = None;
    let mut resume_state = None;
    if let Some(path) = &ckpt_path {
        writer = Some(
            ckpt::CkptWriter::create(std::path::Path::new(path), &fingerprint)
                .map_err(|e| format!("creating checkpoint {path}: {e}"))?,
        );
    }
    if let Some(path) = &resume_path {
        let loaded = ckpt::Checkpoint::load(std::path::Path::new(path))
            .map_err(|e| format!("loading checkpoint {path}: {e}"))?;
        if loaded.fingerprint != fingerprint {
            return Err(format!(
                "checkpoint fingerprint mismatch: journal is `{}`, this run is `{fingerprint}`",
                loaded.fingerprint
            ));
        }
        resume_state = match loaded.latest() {
            Some(snap) => Some(
                watch::decode_snapshot(snap)
                    .ok_or_else(|| format!("corrupt checkpoint snapshot in {path}"))?,
            ),
            None => None,
        };
        writer = Some(
            ckpt::CkptWriter::append_to(std::path::Path::new(path))
                .map_err(|e| format!("reopening checkpoint {path}: {e}"))?,
        );
        if let Some(s) = &resume_state {
            println!("resuming from {path}: {} node(s) already committed", s.position);
        }
    }

    let mut tel = TelemetrySink::new("watch", trace_path, metrics_path, progress);
    println!(
        "watch: {workload} ({total} node(s), {} location(s)), {procs} proc(s), \
         {cache_lines}-line caches, block {block}",
        trace.num_locations
    );
    let t0 = Instant::now();
    let phase_span = ccmm::core::telemetry::span("watch/stream");
    let sink = writer.as_mut().map(|w| WatchCkpt { writer: w, every: ckpt_every });
    let report = watch::run_supervised(&cfg, &trace, resume_state, sink)?;
    drop(phase_span);
    let wall = t0.elapsed();
    tel.end_phase("stream", wall);
    tel.write()?;

    if let Some(e) = &report.ckpt_error {
        eprintln!("warning: checkpoint journalling failed mid-run: {e}");
    }
    for q in &report.quarantined {
        println!(
            "quarantined: conformance sample at prefix {} panicked twice: {}",
            q.task_idx, q.payload
        );
    }
    let v = &report.verdicts;
    println!(
        "streamed {}/{} node(s): valid {} | SC {} | LC {} \
         (violations: {} validity, {} sc, {} lc)",
        report.frontier.len(),
        total,
        v.valid,
        v.sc,
        v.lc,
        v.validity_violations,
        v.sc_violations,
        v.lc_violations
    );
    println!(
        "conformance: {} sampled prefix(es), {} divergence(s){}",
        report.samples,
        report.divergences,
        report.first_divergence.map(|k| format!(" (first at prefix {k})")).unwrap_or_default()
    );
    println!(
        "throughput: {:.0} reveals/sec ({} fresh reveal(s) in {:.2?}); peak RSS {} KiB",
        report.reveals_per_sec, report.fresh_reveals, report.wall, report.peak_rss_kb
    );
    println!(
        "protocol: {} fetch(es), {} reconcile(s), {} flush(es), {} eviction(s)",
        report.stats.fetches, report.stats.reconciles, report.stats.flushes, report.stats.evictions
    );

    // Every run leaves a record (tagged with its status) so complete
    // runs become baselines; only complete runs are gated.
    let record = SweepRecord {
        experiment: format!("watch/{workload}"),
        engine: "stream".to_string(),
        max_nodes: total as u64,
        num_locations: trace.num_locations as u64,
        universe_computations: 0,
        threads: procs as u64,
        wall_ms: report.wall.as_secs_f64() * 1e3,
        pairs_checked: report.fresh_reveals,
        pairs_per_sec: report.reveals_per_sec,
        fixpoint_passes: report.samples,
        status: status_name(report.status).to_string(),
        counters: tel.last_counters(),
    };
    let path = emit(&[record]).map_err(|e| format!("writing bench json: {e}"))?;
    println!("bench: appended watch/{workload} [stream] to {path}");

    if report.status == SweepStatus::Partial {
        println!(
            "deadline hit: {}/{total} node(s) committed; resume frontier: {:?}",
            report.frontier.len(),
            report.frontier.ranges()
        );
        if let Some(path) = ckpt_path.as_deref().or(resume_path.as_deref()) {
            println!("resume with --resume {path}");
        }
        return Ok(exit::PARTIAL);
    }
    if !report.passed() && report.status == SweepStatus::Complete {
        println!(
            "verdict check FAILED: valid={} lc={} divergences={}",
            v.valid, v.lc, report.divergences
        );
        return Ok(exit::FAIL);
    }
    if gate && report.status == SweepStatus::Complete {
        let b = baseline.expect("gate precondition checked above");
        println!(
            "gate: {:.0} reveals/sec vs baseline {:.0} (threshold {:.0})",
            report.reveals_per_sec,
            b.pairs_per_sec,
            b.pairs_per_sec / 2.0
        );
        if report.reveals_per_sec < b.pairs_per_sec / 2.0 {
            println!(
                "perf gate FAILED: {:.0} reveals/sec is more than 2x below the baseline",
                report.reveals_per_sec
            );
            return Ok(exit::FAIL);
        }
    } else if gate {
        println!(
            "gate: skipped — run was {} (only complete runs are gated)",
            status_name(report.status)
        );
    }
    Ok(match report.status {
        SweepStatus::Complete => exit::COMPLETE,
        SweepStatus::Degraded => exit::DEGRADED,
        SweepStatus::Partial => exit::PARTIAL,
        SweepStatus::Killed => exit::KILLED,
    })
}

/// Installs `handler` for `SIGTERM` and `SIGINT`. Raw `signal(2)` FFI —
/// the workspace deliberately has no libc dependency, and setting an
/// `AtomicBool` is async-signal-safe.
#[cfg(unix)]
fn install_drain_signals(handler: extern "C" fn(i32)) {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
    }
}

#[cfg(not(unix))]
fn install_drain_signals(_handler: extern "C" fn(i32)) {}

/// The drain flag the signal handler flips; the serve loop polls it.
static DRAIN_REQUESTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_drain_signal(_signum: i32) {
    DRAIN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// In-process proof that panic quarantine works request-granular: fault
/// request 0 into a handler panic, then show request 1 on the *same
/// connection* is served normally.
fn serve_self_test() -> Result<(), String> {
    use ccmm::client::Connection;
    use ccmm::core::fault::ServeFaultPlan;
    use ccmm::core::serve::{render_request, Reply, Request, Verb};
    use ccmm::serve::{spawn, ServeConfig};

    println!("serve self-test: panic quarantine on request 0, same-connection recovery ...");
    let cfg = ServeConfig {
        fault: ServeFaultPlan::from_spec("panic-at-request=0")
            .expect("self-test fault spec parses"),
        ..ServeConfig::default()
    };
    let handle = spawn(cfg).map_err(|e| format!("binding self-test server: {e}"))?;
    let ping = render_request(&Request { verb: Verb::Ping, deadline_ms: None });
    let mut conn = Connection::connect(&handle.addr.to_string(), 2_000)
        .map_err(|e| format!("self-test connect: {e}"))?;
    let first =
        conn.roundtrip(ping.as_bytes()).map_err(|e| format!("self-test round-trip 1: {e}"))?;
    let Reply::Degraded { message } = first else {
        return Err(format!("expected a degraded reply to the faulted request, got {first:?}"));
    };
    let second =
        conn.roundtrip(ping.as_bytes()).map_err(|e| format!("self-test round-trip 2: {e}"))?;
    if second != (Reply::Ok { body: vec!["pong".to_string()], cached: false }) {
        return Err(format!("expected a normal pong after the quarantined panic, got {second:?}"));
    }
    drop(conn);
    let stats = handle.shutdown();
    if stats.connections_accepted != stats.connections_closed {
        return Err(format!(
            "connection leak: {} accepted, {} closed",
            stats.connections_accepted, stats.connections_closed
        ));
    }
    println!("caught: {message}");
    println!("next request on the same connection served normally; drain leaked nothing");
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<u8, String> {
    use ccmm::core::fault::ServeFaultPlan;
    use ccmm::serve::{spawn, ServeConfig};
    use std::time::Instant;

    let mut cfg = ServeConfig::default();
    let mut metrics_path: Option<String> = None;
    let mut self_test = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => cfg.addr = take("--addr")?,
            "--max-inflight" => {
                cfg.max_inflight =
                    take("--max-inflight")?.parse().map_err(|_| "bad --max-inflight")?;
            }
            "--retry-after-ms" => {
                cfg.retry_after_ms =
                    take("--retry-after-ms")?.parse().map_err(|_| "bad --retry-after-ms")?;
            }
            "--deadline-ms" => {
                cfg.deadline_ms =
                    Some(take("--deadline-ms")?.parse().map_err(|_| "bad --deadline-ms")?);
            }
            "--cache-capacity" => {
                cfg.cache_capacity =
                    take("--cache-capacity")?.parse().map_err(|_| "bad --cache-capacity")?;
            }
            "--fault" => cfg.fault = ServeFaultPlan::from_spec(&take("--fault")?)?,
            "--metrics" => metrics_path = Some(take("--metrics")?),
            "--self-test" => self_test = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if self_test {
        serve_self_test()?;
        return Ok(exit::COMPLETE);
    }

    let mut tel = TelemetrySink::new("serve", None, metrics_path, false);
    let t0 = Instant::now();
    if !cfg.fault.is_empty() {
        println!("fault plan: {} (seed {})", cfg.fault, cfg.fault.seed());
    }
    let handle = spawn(cfg).map_err(|e| format!("binding listener: {e}"))?;
    // The line tests and scripts parse to find the port — keep it first
    // and keep its shape.
    println!("listening on {}", handle.addr);
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    install_drain_signals(on_drain_signal);
    let stop = handle.stop_flag();
    while !DRAIN_REQUESTED.load(std::sync::atomic::Ordering::SeqCst)
        && !stop.load(std::sync::atomic::Ordering::SeqCst)
    {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    println!("drain requested: finishing in-flight requests ...");
    let stats = handle.shutdown();
    tel.end_phase("serve", t0.elapsed());
    tel.write()?;
    let hit_rate = if stats.cache_hits + stats.cache_misses > 0 {
        stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses) as f64
    } else {
        0.0
    };
    println!(
        "drained: {} request(s) — {} served, {} shed, {} degraded, {} deadline-expired, \
         {} frame error(s), {} refused draining",
        stats.requests,
        stats.served,
        stats.shed,
        stats.degraded,
        stats.deadline_expired,
        stats.frame_errors,
        stats.refused_draining
    );
    println!(
        "cache: {} hit(s), {} miss(es), {} eviction(s), hit rate {hit_rate:.2}",
        stats.cache_hits, stats.cache_misses, stats.cache_evictions
    );
    println!(
        "connections: {} accepted, {} closed",
        stats.connections_accepted, stats.connections_closed
    );
    if stats.connections_accepted != stats.connections_closed {
        return Err(format!(
            "connection leak after drain: {} accepted vs {} closed",
            stats.connections_accepted, stats.connections_closed
        ));
    }
    Ok(exit::COMPLETE)
}

fn cmd_query(args: &[String]) -> Result<u8, String> {
    use ccmm::client::query_with_retries;
    use ccmm::core::serve::{render_request, verdict_line, Reply, Request, Verb};

    let mut addr: Option<String> = None;
    let mut verb: Option<String> = None;
    let mut model: Option<Model> = None;
    let mut litmus_name: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut timeout_ms = 2_000u64;
    let mut retries = 5u32;
    let mut seed = 0u64;
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => addr = Some(take("--addr")?),
            "--ping" => verb = Some("ping".into()),
            "--models" => verb = Some("models".into()),
            "--model" => {
                verb = Some("check".into());
                model = Some(model_by_name(&take("--model")?)?);
            }
            "--litmus" => {
                verb = Some("litmus".into());
                litmus_name = Some(take("--litmus")?);
            }
            "--deadline-ms" => {
                deadline_ms = Some(take("--deadline-ms")?.parse().map_err(|_| "bad --deadline-ms")?)
            }
            "--timeout-ms" => {
                timeout_ms = take("--timeout-ms")?.parse().map_err(|_| "bad --timeout-ms")?
            }
            "--retries" => retries = take("--retries")?.parse().map_err(|_| "bad --retries")?,
            "--seed" => seed = take("--seed")?.parse().map_err(|_| "bad --seed")?,
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            path => paths.push(path.to_string()),
        }
    }
    let addr = addr.ok_or("usage: ccmm query --addr HOST:PORT (--ping | --model M <comp> <obs> | --models <comp> <obs> | --litmus NAME)")?;
    let request = match verb.as_deref() {
        Some("ping") => Request { verb: Verb::Ping, deadline_ms },
        Some("litmus") => {
            Request { verb: Verb::Litmus { name: litmus_name.unwrap() }, deadline_ms }
        }
        Some(v @ ("check" | "models")) => {
            let [cpath, opath] = paths.as_slice() else {
                return Err(format!("--{v} needs <computation> <observer> files"));
            };
            let (c, phi) = load_pair(cpath, opath)?;
            let verb = if v == "check" {
                Verb::Check { model: model.unwrap(), c, phi }
            } else {
                Verb::Models { c, phi }
            };
            Request { verb, deadline_ms }
        }
        _ => {
            return Err("pick one of --ping, --model M, --models, --litmus NAME".into());
        }
    };
    let payload = render_request(&request);
    let out = query_with_retries(&addr, payload.as_bytes(), timeout_ms, retries, seed);
    if out.attempts > 1 {
        eprintln!(
            "transport: {} attempt(s), {} error(s) along the way",
            out.attempts,
            out.transport_errors.len()
        );
    }
    let Some(reply) = out.reply else {
        let last = out.transport_errors.last().map(|e| e.to_string()).unwrap_or_default();
        eprintln!("no reply after {} attempt(s): {last}", out.attempts);
        return Ok(exit::TRANSPORT);
    };
    match reply {
        Reply::Ok { body, cached } => {
            for line in &body {
                println!("{line}");
            }
            if cached {
                eprintln!("(cached)");
            }
            // `--model` mirrors `ccmm check`: exit 1 on a non-member.
            if let Verb::Check { model, .. } = &request.verb {
                let member = body.first().is_some_and(|l| l == &verdict_line(*model, true));
                return Ok(if member { exit::COMPLETE } else { exit::FAIL });
            }
            Ok(exit::COMPLETE)
        }
        Reply::Error { line, message } => {
            eprintln!("request rejected at line {line}: {message}");
            Err(format!("server rejected the request: line {line}: {message}"))
        }
        Reply::Degraded { message } => {
            eprintln!("degraded: {message}");
            Ok(exit::DEGRADED)
        }
        Reply::Partial { done, total, body } => {
            for line in &body {
                println!("{line}");
            }
            eprintln!("partial: deadline expired after {done}/{total} check(s)");
            Ok(exit::PARTIAL)
        }
        Reply::Overloaded { retry_after_ms } => {
            eprintln!(
                "overloaded after {} attempt(s) (server hints retry-after {retry_after_ms} ms)",
                out.attempts
            );
            Ok(exit::OVERLOADED)
        }
        Reply::ShuttingDown => {
            eprintln!("server is draining; retries exhausted");
            Ok(exit::OVERLOADED)
        }
    }
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let [cpath] = args else {
        return Err("usage: ccmm dot <computation>".into());
    };
    let c = parse_computation(&read_input(cpath)?).map_err(|e| e.to_string())?;
    print!("{}", c.to_dot("computation"));
    Ok(())
}

const USAGE: &str = "\
ccmm — computation-centric memory models (Frigo & Luchangco, SPAA 1998)

USAGE:
  ccmm models <computation> <observer>     memberships of a pair in all models
  ccmm check --model <m> <comp> <obs>      exit 0 iff member (m: sc|lc|nn|nw|wn|ww)
  ccmm witness [fig2|fig3|fig4]            the paper's witness pairs
  ccmm litmus [name]                       litmus outcome counts per model
  ccmm backer [--workload W] [--procs P] [--cache N] [--page B] [--runs K]
  ccmm lattice [--nodes N]                 pairwise model relations (N ≤ 4)
  ccmm sweep [--bound N] [--locs L] [--canonical] [--engine E] [--threads T]
             [--gate] [--deadline-secs S] [--fault SPEC] [--ckpt PATH]
             [--ckpt-every K] [--resume PATH]
             [--trace FILE] [--metrics FILE] [--progress]
                                           exhaustive verification at bound N
                                           (N ≤ 5): memberships, lattice, NN*
                                           fixpoint, constructibility; appends
                                           timings to BENCH_sweep.json; --gate
                                           fails on >2x throughput regression
                                           vs the same-engine baseline (exit 5
                                           when no baseline exists).
                                           --engine lane64 (with --canonical)
                                           batches 64 observers per u64 word
                                           and runs the Δ* fixpoint on lane
                                           survivor masks; counts and
                                           witnesses stay bit-identical to
                                           scalar, and every phase runs
                                           through bound 6 (memberships phase
                                           only beyond; fixpoint journals to
                                           <ckpt>.fixpoint).
                                           --deadline-secs stops after the
                                           budget (exit 4, resume frontier
                                           printed); --ckpt journals progress
                                           every K tasks; --resume continues a
                                           journal bit-identically; --fault
                                           injects deterministic faults (e.g.
                                           panic-at-task=3, kill-after-ckpt=2;
                                           exit 3 degraded, 70 killed).
                                           --metrics writes per-phase counters
                                           (JSON; counter values bit-identical
                                           across thread counts for the
                                           memberships and fixpoint phases),
                                           --trace writes span events (JSONL),
                                           --progress heartbeats on stderr
  ccmm conformance [--nodes N] [--locs L] [--random K] [--seed S] [--threads T]
                   [--canonical] [--no-harvest] [--self-test] [--out DIR]
                   [--trace FILE] [--metrics FILE] [--progress]
                                           fast checkers vs oracles; exit 0 iff
                                           no disagreement (witnesses shrunk);
                                           nodes >= 5 sweeps canonical reps
  ccmm stress [--seed S] [--iters N] [--threads T] [--perturb SPEC]
              [--mutate M] [--self-test] [--deadline-secs S] [--fault SPEC]
              [--ckpt PATH] [--ckpt-every K] [--resume PATH]
              [--trace FILE] [--metrics FILE] [--progress]
                                           schedule-perturbation stress of the
                                           threaded BACKER executor with LC
                                           conformance as the oracle; exit 0
                                           iff every perturbed execution
                                           conforms. Deterministic per
                                           (S, N, T) in its seeds, workloads,
                                           check counts, and failures (failing
                                           seed + shrunk trace printed; exit
                                           1). --perturb tunes the injection
                                           (e.g. yield=1/2,spin=1/8:64,
                                           steal=rotate); --mutate weakens the
                                           protocol (skip-flush |
                                           skip-reconcile) to exercise the
                                           oracle; --self-test proves a seeded
                                           mutation is caught before the run.
                                           Supervision matches sweep:
                                           quarantine (exit 3), deadline +
                                           resume frontier (exit 4), --ckpt/
                                           --resume journals, --fault (exit 70
                                           killed)
  ccmm watch [--workload W] [--procs P] [--cache N] [--block B]
             [--fault F] [--deadline-secs S] [--ckpt PATH] [--ckpt-every K]
             [--resume PATH] [--sample-every K] [--sample-cap N] [--gate]
             [--trace FILE] [--metrics FILE] [--progress]
                                           stream a harvested Cilk trace
                                           (fib:N | matmul:N | stencil:W,T;
                                           depths reach 10^5-10^7 nodes)
                                           through the lean BACKER executor
                                           and check validity + SC/LC on the
                                           fly, race-detector style: one
                                           reveal per node via SP-order and
                                           last-writer indices, no dense
                                           closure. Every K-th commit inside
                                           the first --sample-cap nodes the
                                           prefix is densified and
                                           cross-checked against the exact
                                           batch checkers; any divergence is
                                           exit 1. --fault (skip-flush |
                                           skip-reconcile) weakens the
                                           protocol — the stream then reports
                                           the LC violation (exit 1).
                                           Supervision matches sweep:
                                           deadline → exit 4 + node frontier,
                                           --ckpt/--resume journals with
                                           replay-verified resume, sample
                                           panics quarantined (exit 3).
                                           Appends reveals/sec + counters to
                                           BENCH_sweep.json; --gate fails on
                                           >2x regression vs the same-shape
                                           baseline (exit 5 when none)
  ccmm serve [--addr A] [--max-inflight N] [--retry-after-ms MS]
             [--deadline-ms MS] [--cache-capacity N] [--fault SPEC]
             [--metrics FILE] [--self-test]
                                           membership query daemon over a
                                           framed TCP protocol. Prints
                                           `listening on HOST:PORT` (\":0\"
                                           picks a free port), serves until
                                           SIGTERM/SIGINT, then drains: stops
                                           accepting, finishes in-flight
                                           requests, reports stats, exits 0.
                                           Per-request panics become
                                           `degraded` replies, deadline
                                           expiry `partial`, load shedding
                                           `overloaded` + retry-after hint.
                                           Verdicts are memoized in a sharded
                                           canonical cache (eviction never
                                           changes an answer). --fault injects
                                           deterministic request-level faults
                                           (e.g. panic=1/13,drop=1/17,seed=42;
                                           see also panic-at-request=N).
                                           --self-test proves quarantine +
                                           same-connection recovery in
                                           process, then exits.
  ccmm query --addr HOST:PORT (--ping | --model M <comp> <obs> |
             --models <comp> <obs> | --litmus NAME)
             [--deadline-ms MS] [--timeout-ms MS] [--retries K] [--seed S]
                                           one query against a running serve
                                           daemon, with timeouts and capped
                                           exponential backoff + seeded
                                           jitter on transport failures and
                                           overload. Exit: 0 ok (member for
                                           --model), 1 non-member, 3 degraded
                                           reply, 4 partial reply, 6 retries
                                           exhausted against overload/drain,
                                           7 no reply at all
  ccmm dot <computation>                   Graphviz export

Computation/observer files use the text format of ccmm_core::parse
(`-` = stdin). Workloads: fib:K matmul:K stencil:K reduce:K mergesort:K.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // Exit codes: 0 success/complete, 1 failed check/gate/conformance,
    // 2 usage or I/O error, and for `sweep` additionally 3 degraded,
    // 4 partial (deadline), 5 gate-without-baseline, 70 killed by the
    // fault plan.
    let result: Result<u8, String> = match cmd.as_str() {
        "models" => cmd_models(rest).map(|()| 0),
        "check" => cmd_check(rest).map(|ok| if ok { 0 } else { 1 }),
        "witness" => cmd_witness(rest).map(|()| 0),
        "litmus" => cmd_litmus(rest).map(|()| 0),
        "backer" => cmd_backer(rest).map(|()| 0),
        "lattice" => cmd_lattice(rest).map(|()| 0),
        "sweep" => cmd_sweep(rest),
        "conformance" => cmd_conformance(rest).map(|ok| if ok { 0 } else { 1 }),
        "stress" => cmd_stress(rest),
        "watch" => cmd_watch(rest),
        "serve" => cmd_serve(rest),
        "query" => cmd_query(rest),
        "dot" => cmd_dot(rest).map(|()| 0),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
