//! The `ccmm stress` driver: adversarial schedule perturbation for the
//! threaded BACKER executor, with LC conformance as the oracle.
//!
//! Each iteration draws a workload and a fresh [`PerturbPlan`] seed,
//! runs the real threaded executor under the plan, and checks the
//! induced observer function: it must be *well-formed* (valid for the
//! computation) and *location consistent* — the theorem the executor
//! implements. Every `harvest_every`-th iteration additionally runs the
//! deterministic simulator leg ([`ccmm_backer::harvest`]) over seeded
//! schedules, which is what makes a seeded protocol mutation
//! ([`Mutation`]) reproducibly catchable even on a single-core machine,
//! where real data races may never materialize.
//!
//! The loop is supervised with the same machinery as `ccmm sweep`:
//! a panicking iteration is retried once and then quarantined, a
//! deadline turns the run Partial with a resume [`Frontier`], the
//! frontier is journalled through [`ckpt::CkptWriter`], and a
//! [`FaultPlan`] can panic/delay/kill specific iterations to exercise
//! the supervision itself.
//!
//! Determinism contract (per `(seed, iters, threads)`): the workload
//! sequence, the perturbation decisions, the simulator-leg observers,
//! and therefore the check count and every failure (seed + shrunk
//! trace) are reproducible. What the *OS* does with the injected
//! schedule points is not — so the distinct-observer and SC-membership
//! tallies from the threaded leg are reported as timing-dependent and
//! never checkpointed or compared.

use ccmm_backer::harvest::harvest_observers_cfg;
use ccmm_backer::{threads, BackerConfig, FaultInjection, PerturbPlan};
use ccmm_conformance::{shrink, sources};
use ccmm_core::fault::FaultPlan;
use ccmm_core::sweep::supervisor::{Frontier, Quarantined, SweepStatus};
use ccmm_core::telemetry;
use ccmm_core::{ckpt, Computation, Lc, Location, MemoryModel, ObserverFunction, Op, Sc};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A deliberately weakened executor, used by the self-test to prove the
/// harness catches real protocol bugs. Each mutation maps to a
/// [`FaultInjection`] switch: the executions it produces are exactly
/// what a lost happens-before edge would admit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Mutation {
    /// The correct protocol.
    #[default]
    None,
    /// Skip the flush before a node with a cross-processor predecessor —
    /// models trusting a stale `proc_of` read (a weakened Acquire).
    SkipFlush,
    /// Skip the reconcile after every node — models a lost release edge:
    /// writes never become visible across dependency edges.
    SkipReconcile,
}

impl Mutation {
    /// Parses a `--mutate` value.
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "none" => Ok(Mutation::None),
            "skip-flush" => Ok(Mutation::SkipFlush),
            "skip-reconcile" => Ok(Mutation::SkipReconcile),
            other => {
                Err(format!("unknown mutation `{other}` (none | skip-flush | skip-reconcile)"))
            }
        }
    }

    /// The canonical name (inverse of [`Mutation::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::SkipFlush => "skip-flush",
            Mutation::SkipReconcile => "skip-reconcile",
        }
    }

    fn faults(self) -> FaultInjection {
        match self {
            Mutation::None => FaultInjection::NONE,
            Mutation::SkipFlush => FaultInjection { skip_flush: true, skip_reconcile: false },
            Mutation::SkipReconcile => FaultInjection { skip_flush: false, skip_reconcile: true },
        }
    }
}

/// Configuration for one stress run.
#[derive(Clone, Debug)]
pub struct StressConfig {
    /// Base seed; iteration `i` derives its own seed from `(seed, i)`.
    pub seed: u64,
    /// Total iterations.
    pub iters: usize,
    /// Worker threads for the threaded executor (and simulator procs).
    pub threads: usize,
    /// Perturbation shape (its seed is replaced per iteration).
    pub perturb: PerturbPlan,
    /// Executor mutation under test (`None` for a conformance run).
    pub mutation: Mutation,
    /// Wall-clock budget; exceeded ⇒ Partial with a resume frontier.
    pub deadline: Option<Duration>,
    /// Small-cache capacity exercised alongside unbounded caches.
    pub cache_lines: usize,
    /// Run the deterministic simulator leg every this many iterations
    /// (≥ 1; the threaded leg runs every iteration).
    pub harvest_every: usize,
}

impl StressConfig {
    /// Defaults: aggressive perturbation, no mutation, sim leg every 4th
    /// iteration, 1-line small caches.
    pub fn new(seed: u64, iters: usize, threads: usize) -> Self {
        StressConfig {
            seed,
            iters,
            threads,
            perturb: PerturbPlan::aggressive(seed),
            mutation: Mutation::None,
            deadline: None,
            cache_lines: 1,
            harvest_every: 4,
        }
    }

    /// The checkpoint fingerprint: pins everything that must match for a
    /// journal to be resumable into this run.
    pub fn fingerprint(&self) -> String {
        format!(
            "ccmm-stress-v1 seed={} iters={} threads={} perturb={} mutation={} cache_lines={} \
             harvest_every={}",
            self.seed,
            self.iters,
            self.threads,
            self.perturb,
            self.mutation.name(),
            self.cache_lines,
            self.harvest_every
        )
    }
}

/// One conformance failure, shrunk to a 1-minimal witness.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The iteration that failed.
    pub iteration: usize,
    /// Its derived seed — rerunning with `--seed` this and `--iters 1`
    /// reproduces the deterministic leg's failure.
    pub seed: u64,
    /// Which workload the iteration drew.
    pub workload: String,
    /// Which leg caught it.
    pub leg: &'static str,
    /// `invalid-observer` or `lc-violation`.
    pub kind: &'static str,
    /// The shrunk computation.
    pub c: Computation,
    /// The shrunk observer function.
    pub phi: ObserverFunction,
    /// Shrink moves taken.
    pub shrink_steps: usize,
}

/// The outcome of a stress run.
#[derive(Debug)]
pub struct StressReport {
    /// Supervision verdict (Complete / Degraded / Partial / Killed).
    pub status: SweepStatus,
    /// Completed iteration indices (includes resumed-from ones).
    pub frontier: Frontier,
    /// Total iterations requested.
    pub total: usize,
    /// Conformance checks performed — deterministic per (S, N, T).
    pub checks: u64,
    /// Conformance failures (the run stops at the first).
    pub failures: Vec<Failure>,
    /// Iterations quarantined after panicking twice.
    pub quarantined: Vec<Quarantined>,
    /// Distinct observers seen from the threaded leg — timing-dependent.
    pub distinct_observers: usize,
    /// Threaded-leg observers that were also SC — timing-dependent.
    pub sc_member: u64,
    /// Threaded-leg observers SC-checked — timing-dependent.
    pub sc_checked: u64,
    /// A checkpoint-append failure, if journalling stopped.
    pub ckpt_error: Option<String>,
}

impl StressReport {
    /// Whether every iteration ran and conformed.
    pub fn passed(&self) -> bool {
        self.status == SweepStatus::Complete && self.failures.is_empty()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The iteration seed: a pure function of the run seed and the index,
/// so a resumed run derives identical per-iteration behaviour.
/// Iteration 0 uses the run seed verbatim, which makes the failure
/// report's rerun hint exact: `--seed <failing seed> --iters 1` replays
/// the failing iteration as iteration 0 of a fresh run.
pub fn iter_seed(seed: u64, iteration: usize) -> u64 {
    if iteration == 0 {
        seed
    } else {
        splitmix64(seed ^ splitmix64(iteration as u64))
    }
}

/// The deterministic workload pool. Fixed shapes come first (they pin
/// the executor's fork/join and chain paths); the rest of the index
/// space draws random computations from the iteration seed.
fn workload_for(iter_seed: u64) -> (String, Computation) {
    let fixed = ccmm_cilk::programs::conformance_workloads();
    let pick = (iter_seed % (fixed.len() as u64 + 3)) as usize;
    if pick < fixed.len() {
        let (name, c) = fixed.into_iter().nth(pick).expect("pick < len");
        return (name.to_string(), c);
    }
    match pick - fixed.len() {
        0 => {
            // An 8-node write/read chain: must behave like serial memory.
            let dag = ccmm_dag::generate::chain(8);
            let ops: Vec<Op> = (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        Op::Write(Location::new(0))
                    } else {
                        Op::Read(Location::new(0))
                    }
                })
                .collect();
            ("chain8".into(), Computation::new(dag, ops).expect("one op per node"))
        }
        1 => {
            let dag = ccmm_dag::generate::fork_join_tree(3);
            let n = dag.node_count();
            let ops: Vec<Op> = (0..n)
                .map(|i| match i % 4 {
                    0 => Op::Write(Location::new(0)),
                    1 => Op::Read(Location::new(0)),
                    2 => Op::Write(Location::new(1)),
                    _ => Op::Read(Location::new(1)),
                })
                .collect();
            ("fork-join3".into(), Computation::new(dag, ops).expect("one op per node"))
        }
        _ => {
            let mut rng = StdRng::seed_from_u64(iter_seed);
            ("random".into(), sources::random_computation(&mut rng, 12, 3))
        }
    }
}

/// Checks one observer; on disagreement shrinks it to a 1-minimal
/// witness and returns the failure.
fn check_observer(
    iteration: usize,
    seed: u64,
    workload: &str,
    leg: &'static str,
    c: &Computation,
    phi: &ObserverFunction,
) -> Result<(), Box<Failure>> {
    let kind = if !phi.is_valid_for(c) {
        "invalid-observer"
    } else if !Lc.contains(c, phi) {
        "lc-violation"
    } else {
        return Ok(());
    };
    let shrunk = shrink(c, phi, |c2, p2| !p2.is_valid_for(c2) || !Lc.contains(c2, p2));
    Err(Box::new(Failure {
        iteration,
        seed,
        workload: workload.to_string(),
        leg,
        kind,
        c: shrunk.c,
        phi: shrunk.phi,
        shrink_steps: shrunk.steps,
    }))
}

/// Per-iteration result folded into the report.
struct IterDelta {
    checks: u64,
    sc_member: u64,
    sc_checked: u64,
    threaded_observers: Vec<ObserverFunction>,
    failure: Option<Box<Failure>>,
}

/// Runs one iteration: the threaded leg (every time) and the simulator
/// leg (on `harvest_every` boundaries).
fn run_iteration(cfg: &StressConfig, iteration: usize) -> IterDelta {
    let seed = iter_seed(cfg.seed, iteration);
    let (workload, c) = workload_for(seed);
    let plan = cfg.perturb.clone().with_seed(seed);
    let backer = BackerConfig::with_processors(cfg.threads)
        .cache_capacity(cfg.cache_lines.max(1))
        .faults(cfg.mutation.faults());
    let mut delta = IterDelta {
        checks: 0,
        sc_member: 0,
        sc_checked: 0,
        threaded_observers: Vec::new(),
        failure: None,
    };

    // Threaded leg: real OS threads under the perturbation plan.
    let r = threads::run_perturbed(&c, &backer, &plan);
    delta.checks += 1;
    // SC membership is worth tallying only where the exact checker is
    // cheap; the tally is timing-dependent either way.
    if c.node_count() <= 10 && r.observer.is_valid_for(&c) {
        delta.sc_checked += 1;
        delta.sc_member += Sc.contains(&c, &r.observer) as u64;
    }
    if let Err(f) = check_observer(iteration, seed, &workload, "threaded", &c, &r.observer) {
        delta.failure = Some(f);
        return delta;
    }
    delta.threaded_observers.push(r.observer);

    // Simulator leg: deterministic seeded schedules through the same
    // protocol switches — the leg that reproduces mutations reliably.
    if iteration.is_multiple_of(cfg.harvest_every.max(1)) {
        for phi in harvest_observers_cfg(&c, 3, cfg.threads, cfg.cache_lines, seed, &backer) {
            delta.checks += 1;
            if let Err(f) = check_observer(iteration, seed, &workload, "sim", &c, &phi) {
                delta.failure = Some(f);
                return delta;
            }
        }
    }
    delta
}

/// Encodes the checkpoint payload: frontier + deterministic counters.
/// Timing-dependent tallies are deliberately not journalled — a resumed
/// run re-derives only what is reproducible.
fn encode_snapshot(frontier: &Frontier, checks: u64) -> Vec<u8> {
    let mut out = Vec::new();
    frontier.encode_into(&mut out);
    ckpt::put_u64(&mut out, checks);
    out
}

/// Decodes a checkpoint payload.
pub fn decode_snapshot(mut bytes: &[u8]) -> Option<(Frontier, u64)> {
    let f = Frontier::decode_from(&mut bytes)?;
    let checks = ckpt::get_u64(&mut bytes)?;
    if bytes.is_empty() {
        Some((f, checks))
    } else {
        None
    }
}

/// Journalling plumbing for [`run_supervised`].
pub struct StressCkpt<'a> {
    /// Open journal (created with the config's fingerprint).
    pub writer: &'a mut ckpt::CkptWriter,
    /// Snapshot every this many completed iterations.
    pub every: usize,
}

/// Runs the stress loop under supervision.
///
/// The loop is serial over iterations (the executor under test is
/// internally parallel — nesting thread pools would only dilute the
/// contention the perturbation works to create), but carries the full
/// supervisor contract: panic → retry once → quarantine; deadline →
/// Partial with a resume frontier; `fault` can panic/delay specific
/// iterations and kill after checkpoint records; `resume` skips
/// already-completed iterations. The run stops early at the first
/// conformance failure — there is nothing more valuable to learn, and
/// the failing seed plus shrunk trace is the deliverable.
pub fn run_supervised(
    cfg: &StressConfig,
    fault: &FaultPlan,
    resume: Option<(Frontier, u64)>,
    mut ckpt_sink: Option<StressCkpt<'_>>,
) -> StressReport {
    let ids: Vec<usize> = (0..cfg.iters).collect();
    fault.resolve_indices(&ids);
    let (mut frontier, mut checks) = resume.unwrap_or((Frontier::new(), 0));
    let mut report = StressReport {
        status: SweepStatus::Complete,
        frontier: Frontier::new(),
        total: cfg.iters,
        checks,
        failures: Vec::new(),
        quarantined: Vec::new(),
        distinct_observers: 0,
        sc_member: 0,
        sc_checked: 0,
        ckpt_error: None,
    };
    let mut distinct: Vec<ObserverFunction> = Vec::new();
    let mut since_ckpt = 0usize;
    let mut killed = false;
    let start = Instant::now();

    for i in 0..cfg.iters {
        if frontier.contains(i) {
            continue;
        }
        if cfg.deadline.is_some_and(|d| start.elapsed() >= d) {
            report.status = SweepStatus::Partial;
            break;
        }
        let delta = match catch_unwind(AssertUnwindSafe(|| {
            fault.before_task(i);
            run_iteration(cfg, i)
        })) {
            Ok(d) => d,
            Err(_first) => match catch_unwind(AssertUnwindSafe(|| {
                fault.before_task(i);
                run_iteration(cfg, i)
            })) {
                Ok(d) => d,
                Err(second) => {
                    telemetry::count(telemetry::Counter::Quarantines, 1);
                    report.quarantined.push(Quarantined {
                        task_idx: i,
                        size: 0,
                        payload: ccmm_core::fault::payload_string(second),
                    });
                    continue;
                }
            },
        };
        checks += delta.checks;
        report.sc_member += delta.sc_member;
        report.sc_checked += delta.sc_checked;
        for phi in delta.threaded_observers {
            if !distinct.contains(&phi) {
                distinct.push(phi);
            }
        }
        if let Some(f) = delta.failure {
            report.failures.push(*f);
            frontier.insert(i);
            break;
        }
        frontier.insert(i);
        telemetry::progress_tick(frontier.len(), cfg.iters, report.quarantined.len());
        if let Some(sink) = ckpt_sink.as_mut() {
            if report.ckpt_error.is_none() {
                since_ckpt += 1;
                if since_ckpt >= sink.every.max(1) {
                    since_ckpt = 0;
                    match sink.writer.append(&encode_snapshot(&frontier, checks)) {
                        Ok(()) => {
                            telemetry::count(telemetry::Counter::CkptRecords, 1);
                            if fault.should_kill(sink.writer.snapshots()) {
                                killed = true;
                            }
                        }
                        Err(e) => report.ckpt_error = Some(e.to_string()),
                    }
                }
            }
        }
        if killed {
            report.status = SweepStatus::Killed;
            break;
        }
    }

    report.checks = checks;
    report.distinct_observers = distinct.len();
    let scanned = frontier.len() + report.quarantined.len();
    if report.status == SweepStatus::Complete {
        report.status = if scanned < cfg.iters && report.failures.is_empty() {
            SweepStatus::Partial
        } else if !report.quarantined.is_empty() {
            SweepStatus::Degraded
        } else {
            SweepStatus::Complete
        };
    }
    report.frontier = frontier;
    report
}

/// Convenience entry: unsupervised faults, no checkpoint.
pub fn run(cfg: &StressConfig) -> StressReport {
    run_supervised(cfg, &FaultPlan::none(), None, None)
}

/// The self-test: proves the harness catches a deliberately weakened
/// executor. Runs a seeded mutation (`skip-reconcile`, modelling a lost
/// release edge) and requires a conformance failure with a reproducible
/// seed and a shrunk trace; then re-runs the identical seeds unmutated
/// and requires a clean pass.
pub fn self_test(threads: usize) -> Result<(), String> {
    let mut cfg = StressConfig::new(0x00C0_FFEE, 24, threads);
    cfg.harvest_every = 1; // the deterministic leg every iteration
    cfg.mutation = Mutation::SkipReconcile;
    let mutated = run(&cfg);
    let Some(f) = mutated.failures.first() else {
        return Err("self-test: the skip-reconcile mutation was NOT caught".into());
    };
    if f.c.node_count() == 0 {
        return Err("self-test: shrunk trace is empty".into());
    }
    // The failure must reproduce from its reported seed alone.
    let (_, c) = workload_for(f.seed);
    let backer = BackerConfig::with_processors(threads)
        .cache_capacity(cfg.cache_lines.max(1))
        .faults(Mutation::SkipReconcile.faults());
    let reproduced = harvest_observers_cfg(&c, 3, threads, cfg.cache_lines, f.seed, &backer)
        .iter()
        .any(|phi| !phi.is_valid_for(&c) || !Lc.contains(&c, phi));
    if f.leg == "sim" && !reproduced {
        return Err(format!("self-test: seed {} did not reproduce the sim-leg failure", f.seed));
    }
    cfg.mutation = Mutation::None;
    let clean = run(&cfg);
    if !clean.passed() {
        return Err(format!(
            "self-test: unmutated executor failed conformance (status {:?}, {} failure(s))",
            clean.status,
            clean.failures.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stress_is_deterministic_per_seed_in_its_deterministic_outputs() {
        let cfg = StressConfig::new(42, 12, 2);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.status, SweepStatus::Complete);
        assert_eq!(a.checks, b.checks, "check count is part of the determinism contract");
        assert_eq!(a.failures.len(), 0);
        assert_eq!(b.failures.len(), 0);
        assert_eq!(a.frontier, b.frontier);
    }

    #[test]
    fn iteration_seeds_differ_and_are_stable() {
        let s: Vec<u64> = (0..16).map(|i| iter_seed(7, i)).collect();
        let t: Vec<u64> = (0..16).map(|i| iter_seed(7, i)).collect();
        assert_eq!(s, t);
        let mut u = s.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), s.len(), "iteration seeds must not collide");
    }

    #[test]
    fn deadline_yields_partial_with_a_resumable_frontier() {
        let mut cfg = StressConfig::new(3, 10_000, 2);
        cfg.deadline = Some(Duration::from_millis(30));
        let r = run(&cfg);
        assert_eq!(r.status, SweepStatus::Partial);
        assert!(r.frontier.len() < cfg.iters);
        // Resuming from the frontier completes the remaining indices
        // (shrink the total so the resumed run finishes quickly).
        let mut cfg2 = cfg.clone();
        cfg2.iters = r.frontier.len() + 5;
        cfg2.deadline = None;
        let resumed =
            run_supervised(&cfg2, &FaultPlan::none(), Some((r.frontier.clone(), r.checks)), None);
        assert_eq!(resumed.status, SweepStatus::Complete);
        assert_eq!(resumed.frontier.len(), cfg2.iters);
    }

    #[test]
    fn fault_plan_panics_are_quarantined() {
        let cfg = StressConfig::new(5, 8, 2);
        let fault = FaultPlan::none().panic_at_task(3);
        let r = run_supervised(&cfg, &fault, None, None);
        assert_eq!(r.status, SweepStatus::Degraded);
        assert_eq!(r.quarantined.len(), 1);
        assert_eq!(r.quarantined[0].task_idx, 3);
        assert!(!r.frontier.contains(3));
    }

    #[test]
    fn mutation_is_caught_with_seed_and_shrunk_trace() {
        let mut cfg = StressConfig::new(0x00C0_FFEE, 24, 2);
        cfg.harvest_every = 1;
        cfg.mutation = Mutation::SkipReconcile;
        let r = run(&cfg);
        let f = r.failures.first().expect("skip-reconcile must be caught");
        assert!(f.c.node_count() >= 1);
        assert!(f.shrink_steps > 0 || f.c.node_count() <= 3, "trace should have shrunk");
        assert_eq!(f.seed, iter_seed(cfg.seed, f.iteration));
    }

    #[test]
    fn self_test_passes() {
        self_test(2).expect("self-test");
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let mut f = Frontier::new();
        for i in [0usize, 1, 2, 7, 8, 20] {
            f.insert(i);
        }
        let bytes = encode_snapshot(&f, 99);
        let (f2, checks) = decode_snapshot(&bytes).expect("decode");
        assert_eq!(f2, f);
        assert_eq!(checks, 99);
        assert_eq!(decode_snapshot(&bytes[..bytes.len() - 1]), None);
    }
}
