//! The `ccmm serve` daemon: membership-as-a-service over TCP.
//!
//! A thin, robust shell around [`ccmm_core::serve`]: this module owns
//! the sockets, threads, admission control, fault injection, and drain
//! choreography; the protocol (framing, request grammar, verdict cache,
//! panic-quarantined handler) lives in core and is what the conformance
//! harness and proptests exercise socket-free.
//!
//! # Lifecycle
//!
//! [`spawn`] binds a listener and returns a [`ServerHandle`]; requesting
//! shutdown (via the handle or `SIGTERM`/`SIGINT` in the CLI) triggers a
//! *graceful drain*: the acceptor stops accepting, every connection
//! thread finishes the requests already in flight (replying
//! `shutting-down` to frames that arrive after the drain began), all
//! threads are joined, and [`ServeStats`] — including the
//! `connections_accepted == connections_closed` leak check — is
//! reported. The process exits 0 on a clean drain.
//!
//! # Admission control
//!
//! A global in-flight gauge bounds concurrent request handling: past
//! `max_inflight`, requests are shed immediately with an `overloaded`
//! reply carrying a `retry-after-ms` hint, costing the server one frame
//! decode and no model checks.
//!
//! # Fault injection
//!
//! Every admitted request draws a global index; the
//! [`ServeFaultPlan`](ccmm_core::fault::ServeFaultPlan) maps the index
//! to the faults to inject — handler panic (quarantined into a
//! `degraded` reply), response delay, torn reply frame, or connection
//! drop — so the chaos soak replays byte-identically from its seed.

use ccmm_core::fault::{ServeFault, ServeFaultPlan};
use ccmm_core::serve::{encode_frame, FrameDecoder, FrameEvent, Handler, Reply, VerdictCache};
use ccmm_core::telemetry::{self, Counter};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server configuration (CLI flags map 1:1 onto these fields).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Concurrent requests admitted before shedding.
    pub max_inflight: usize,
    /// The `retry-after-ms` hint shed requests carry.
    pub retry_after_ms: u64,
    /// Default per-request deadline budget (None = no budget).
    pub deadline_ms: Option<u64>,
    /// Verdict-cache capacity (entries).
    pub cache_capacity: usize,
    /// The fault plan (empty = serve faithfully).
    pub fault: ServeFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 32,
            retry_after_ms: 25,
            deadline_ms: None,
            cache_capacity: 4096,
            fault: ServeFaultPlan::none(),
        }
    }
}

/// Lifetime statistics, reported after the drain completes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections the acceptor admitted.
    pub connections_accepted: u64,
    /// Connection threads that ran to completion (the leak check:
    /// equals `connections_accepted` after a drain).
    pub connections_closed: u64,
    /// Request frames that reached admission.
    pub requests: u64,
    /// Requests answered `ok`.
    pub served: u64,
    /// Requests shed `overloaded` at admission.
    pub shed: u64,
    /// Requests quarantined into `degraded` replies.
    pub degraded: u64,
    /// Requests cut short into `partial` replies.
    pub deadline_expired: u64,
    /// Payloads rejected with a line-numbered `error` reply (including
    /// oversized frames).
    pub frame_errors: u64,
    /// Requests answered `shutting-down` during the drain.
    pub refused_draining: u64,
    /// Verdict-cache hits.
    pub cache_hits: u64,
    /// Verdict-cache misses.
    pub cache_misses: u64,
    /// Verdict-cache evictions.
    pub cache_evictions: u64,
}

#[derive(Default)]
struct Gauges {
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    requests: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    deadline_expired: AtomicU64,
    frame_errors: AtomicU64,
    refused_draining: AtomicU64,
    inflight: AtomicU64,
    next_request: AtomicU64,
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or deliver `SIGTERM` to the CLI).
pub struct ServerHandle {
    /// The actually-bound address (resolves `:0` to the real port).
    pub addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<ServeStats>,
}

impl ServerHandle {
    /// Requests a graceful drain and waits for it to complete.
    pub fn shutdown(self) -> ServeStats {
        self.stop.store(true, Ordering::SeqCst);
        self.join.join().expect("server thread panicked")
    }

    /// The shutdown flag, for wiring signal handlers to the drain.
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }
}

/// Binds `cfg.addr` and serves on a background thread. The returned
/// handle carries the resolved address — connect clients to it — and
/// the drain trigger.
pub fn spawn(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("ccmm-serve-accept".to_string())
        .spawn(move || run(listener, cfg, stop2))
        .map_err(std::io::Error::other)?;
    Ok(ServerHandle { addr, stop, join })
}

/// The accept loop: polls for connections (non-blocking, so the stop
/// flag is honoured within ~10 ms), spawns one thread per connection,
/// and on stop drains — joins every connection thread — before
/// returning the final stats.
fn run(listener: TcpListener, cfg: ServeConfig, stop: Arc<AtomicBool>) -> ServeStats {
    listener.set_nonblocking(true).expect("set_nonblocking");
    let cache = Arc::new(VerdictCache::new(8, cfg.cache_capacity));
    let gauges = Arc::new(Gauges::default());
    let cfg = Arc::new(cfg);
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                gauges.connections_accepted.fetch_add(1, Ordering::Relaxed);
                telemetry::count(Counter::ServeConnections, 1);
                let cache = Arc::clone(&cache);
                let gauges = Arc::clone(&gauges);
                let cfg = Arc::clone(&cfg);
                let stop = Arc::clone(&stop);
                workers.push(
                    std::thread::Builder::new()
                        .name("ccmm-serve-conn".to_string())
                        .spawn(move || {
                            serve_connection(stream, &cfg, &cache, &gauges, &stop);
                            gauges.connections_closed.fetch_add(1, Ordering::Relaxed);
                        })
                        .expect("spawn connection thread"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                // Reap finished connection threads so a long-lived server
                // does not accumulate handles.
                workers.retain(|w| !w.is_finished());
            }
            Err(_) => break,
        }
    }
    // Drain: no new connections; every connection thread notices the
    // stop flag at its next read timeout, finishes its in-flight
    // request, and exits. Join them all — the leak check counts on it.
    for w in workers {
        let _ = w.join();
    }
    let cs = cache.stats();
    ServeStats {
        connections_accepted: gauges.connections_accepted.load(Ordering::Relaxed),
        connections_closed: gauges.connections_closed.load(Ordering::Relaxed),
        requests: gauges.requests.load(Ordering::Relaxed),
        served: gauges.served.load(Ordering::Relaxed),
        shed: gauges.shed.load(Ordering::Relaxed),
        degraded: gauges.degraded.load(Ordering::Relaxed),
        deadline_expired: gauges.deadline_expired.load(Ordering::Relaxed),
        frame_errors: gauges.frame_errors.load(Ordering::Relaxed),
        refused_draining: gauges.refused_draining.load(Ordering::Relaxed),
        cache_hits: cs.hits,
        cache_misses: cs.misses,
        cache_evictions: cs.evictions,
    }
}

/// Serves one connection until EOF, error, or drain. Every frame gets a
/// reply (or a deliberately injected drop/truncation); a request in
/// flight when the drain starts still completes and is answered.
fn serve_connection(
    mut stream: TcpStream,
    cfg: &ServeConfig,
    cache: &Arc<VerdictCache>,
    gauges: &Gauges,
    stop: &AtomicBool,
) {
    // A short read timeout doubles as the drain poll interval.
    stream.set_read_timeout(Some(Duration::from_millis(50))).ok();
    stream.set_nodelay(true).ok();
    let mut decoder = FrameDecoder::new();
    let mut handler = Handler::new(Arc::clone(cache), cfg.deadline_ms);
    let mut buf = [0u8; 16 * 1024];
    loop {
        // Serve everything already decoded before reading more.
        while let Some(event) = decoder.next_event() {
            let payload = match event {
                FrameEvent::Frame(p) => p,
                FrameEvent::Oversized { len } => {
                    // Structured refusal; the connection survives and the
                    // decoder resyncs past the announced length.
                    gauges.frame_errors.fetch_add(1, Ordering::Relaxed);
                    telemetry::count(Counter::ServeFrameErrors, 1);
                    let reply = Reply::Error {
                        line: 0,
                        message: format!(
                            "frame length {len} exceeds the {} byte cap",
                            ccmm_core::serve::MAX_FRAME
                        ),
                    };
                    if stream.write_all(&encode_frame(&reply.encode())).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if !handle_one(&mut stream, &payload, &mut handler, cfg, gauges, stop) {
                return;
            }
        }
        if stop.load(Ordering::SeqCst) && decoder.is_idle() {
            // Drained: nothing buffered, nothing in flight.
            return;
        }
        use std::io::Read;
        match stream.read(&mut buf) {
            Ok(0) => return, // peer closed
            Ok(n) => decoder.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // poll the stop flag, then read again
            }
            Err(_) => return,
        }
    }
}

/// Admits, handles, and answers one request frame. Returns false when
/// the connection must close (write failure or an injected drop).
fn handle_one(
    stream: &mut TcpStream,
    payload: &[u8],
    handler: &mut Handler,
    cfg: &ServeConfig,
    gauges: &Gauges,
    stop: &AtomicBool,
) -> bool {
    gauges.requests.fetch_add(1, Ordering::Relaxed);
    let idx = gauges.next_request.fetch_add(1, Ordering::Relaxed);
    let fault = cfg.fault.action(idx);

    let reply = if stop.load(Ordering::SeqCst) {
        // The frame arrived after the drain began: refuse it in a
        // structured way rather than leaving the client hanging.
        gauges.refused_draining.fetch_add(1, Ordering::Relaxed);
        Reply::ShuttingDown
    } else {
        let inflight = gauges.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        let reply = if inflight > cfg.max_inflight as u64 {
            gauges.shed.fetch_add(1, Ordering::Relaxed);
            telemetry::count(Counter::ServeShed, 1);
            Reply::Overloaded { retry_after_ms: cfg.retry_after_ms }
        } else {
            let r = handler.handle(payload, fault.panic);
            match &r {
                Reply::Ok { .. } => {
                    gauges.served.fetch_add(1, Ordering::Relaxed);
                }
                Reply::Degraded { .. } => {
                    gauges.degraded.fetch_add(1, Ordering::Relaxed);
                }
                Reply::Partial { .. } => {
                    gauges.deadline_expired.fetch_add(1, Ordering::Relaxed);
                }
                Reply::Error { .. } => {
                    gauges.frame_errors.fetch_add(1, Ordering::Relaxed);
                }
                Reply::Overloaded { .. } | Reply::ShuttingDown => {}
            }
            r
        };
        gauges.inflight.fetch_sub(1, Ordering::Relaxed);
        reply
    };

    apply_response_faults(stream, &reply, &fault)
}

/// Writes the reply, applying the injected delay / truncation / drop.
/// Returns false when the connection must close.
fn apply_response_faults(stream: &mut TcpStream, reply: &Reply, fault: &ServeFault) -> bool {
    if fault.delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(fault.delay_ms));
    }
    if fault.drop_conn {
        // Close without replying: the client sees EOF and retries.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }
    let wire = encode_frame(&reply.encode());
    if fault.truncate {
        // A torn frame: half the bytes, then EOF. The client's decoder
        // must treat it as a transport error, never a verdict.
        let cut = (wire.len() / 2).max(1);
        let _ = stream.write_all(&wire[..cut]);
        let _ = stream.flush();
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return false;
    }
    stream.write_all(&wire).and_then(|_| stream.flush()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Connection;
    use ccmm_core::serve::{render_request, Request, Verb};

    fn ping() -> String {
        render_request(&Request { verb: Verb::Ping, deadline_ms: None })
    }

    #[test]
    fn spawn_serve_ping_drain() {
        let handle = spawn(ServeConfig::default()).unwrap();
        let mut conn = Connection::connect(&handle.addr.to_string(), 2_000).unwrap();
        let reply = conn.roundtrip(ping().as_bytes()).unwrap();
        assert_eq!(reply, Reply::Ok { body: vec!["pong".into()], cached: false });
        drop(conn);
        let stats = handle.shutdown();
        assert_eq!(stats.connections_accepted, 1);
        assert_eq!(stats.connections_closed, 1, "drain must reap the connection");
        assert_eq!(stats.served, 1);
    }

    #[test]
    fn injected_panic_degrades_one_request_and_connection_survives() {
        let cfg = ServeConfig {
            fault: ServeFaultPlan::from_spec("panic-at-request=0").unwrap(),
            ..ServeConfig::default()
        };
        let handle = spawn(cfg).unwrap();
        let mut conn = Connection::connect(&handle.addr.to_string(), 2_000).unwrap();
        let first = conn.roundtrip(ping().as_bytes()).unwrap();
        assert!(matches!(first, Reply::Degraded { .. }), "request 0 panics: {first:?}");
        // Same connection, next request: served normally.
        let second = conn.roundtrip(ping().as_bytes()).unwrap();
        assert_eq!(second, Reply::Ok { body: vec!["pong".into()], cached: false });
        drop(conn);
        let stats = handle.shutdown();
        assert_eq!((stats.degraded, stats.served), (1, 1));
        assert_eq!(stats.connections_closed, stats.connections_accepted);
    }

    #[test]
    fn overload_sheds_with_retry_hint() {
        // max_inflight = 0 admits nothing: every request sheds.
        let cfg = ServeConfig { max_inflight: 0, retry_after_ms: 7, ..ServeConfig::default() };
        let handle = spawn(cfg).unwrap();
        let mut conn = Connection::connect(&handle.addr.to_string(), 2_000).unwrap();
        let reply = conn.roundtrip(ping().as_bytes()).unwrap();
        assert_eq!(reply, Reply::Overloaded { retry_after_ms: 7 });
        drop(conn);
        let stats = handle.shutdown();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.served, 0);
    }
}
