//! The `ccmm watch` driver: on-the-fly LC/SC checking of harvested Cilk
//! traces through the streaming BACKER executor.
//!
//! Where `ccmm backer` densifies a computation (Θ(n²) reachability, all
//! locations probed per node) and checks membership post-mortem, `watch`
//! is the race-detector-style path for million-node traces: the trace is
//! built once by the Cilk builder ([`RawTrace`]), executed node-at-a-time
//! by [`StreamRunner`] (occupancy-bounded caches, deterministic
//! block-cyclic schedule), and every access is judged *as it commits* by
//! [`StreamChecker`] against the SP-order oracle and per-location
//! last-writer indices — O(degree)-ish per reveal, no transitive closure,
//! no dense observer matrix.
//!
//! The per-access verdicts decide membership of the completed pair
//! `(C, Φ̂)` (streamed observations completed by the commit-order
//! last-writer function; see `ccmm_core::stream` for the exactness
//! argument). For the race-free programs harvested here the streaming
//! verdicts are *provably identical* to the batch checkers, and the loop
//! keeps itself honest: every `sample_every`-th commit inside the first
//! `sample_cap` nodes, the prefix is densified and handed to the exact
//! `Sc`/`Lc` checkers; any disagreement is a **divergence** (counted,
//! telemetered, and fatal to [`WatchReport::passed`]). `sample_cap`
//! exists because `Sc` is the paper's NP-complete checker — prefixes stay
//! small while the stream runs to millions.
//!
//! Supervision is the §8 contract shared with `ccmm sweep` and
//! `ccmm stress`: a deadline turns the run Partial with a node
//! [`Frontier`], progress is journalled through [`ckpt::CkptWriter`]
//! (fingerprint-pinned, crash-safe), and a panicking conformance sample
//! is retried once then quarantined without stopping the stream. Resume
//! is *replay-based*: the runner and checker are deterministic per
//! config, so a resumed run re-executes to the journalled position with
//! sampling disabled, asserts the violation counters match the snapshot
//! bit-for-bit, and only then continues fresh work — no protocol state
//! ever needs serialising.

use ccmm_backer::{BackerConfig, FaultInjection, Stats, StreamRunner};
use ccmm_cilk::{fib_trace, matmul_trace, stencil_trace, RawTrace};
use ccmm_core::last_writer::last_writer_function;
use ccmm_core::model::CheckScratch;
use ccmm_core::sweep::supervisor::{Frontier, Quarantined, SweepStatus};
use ccmm_core::{ckpt, telemetry, Computation, Lc, MemoryModel, Sc, StreamChecker, StreamVerdicts};
use ccmm_dag::NodeId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Parses a trace workload spec: `fib:N`, `matmul:N` (N a power of two),
/// or `stencil:W,T`. These are the determinate (race-free) Cilk programs
/// whose streaming verdicts are exact — see the module docs.
pub fn parse_trace_workload(spec: &str) -> Result<RawTrace, String> {
    let usage = || format!("bad workload `{spec}` (expected fib:N | matmul:N | stencil:W,T)");
    let (name, rest) = spec.split_once(':').ok_or_else(usage)?;
    match name {
        "fib" => {
            let n: u32 = rest.parse().map_err(|_| usage())?;
            if n > 32 {
                return Err(format!("fib:{n} would build a >100M-node trace (max 32)"));
            }
            Ok(fib_trace(n))
        }
        "matmul" => {
            let n: usize = rest.parse().map_err(|_| usage())?;
            if n == 0 || !n.is_power_of_two() || n > 128 {
                return Err(format!("matmul:{n}: side must be a power of two in 1..=128"));
            }
            Ok(matmul_trace(n))
        }
        "stencil" => {
            let (w, t) = rest.split_once(',').ok_or_else(usage)?;
            let w: usize = w.parse().map_err(|_| usage())?;
            let t: usize = t.parse().map_err(|_| usage())?;
            if w == 0 || t == 0 || w.checked_mul(t).is_none_or(|n| n > 1 << 27) {
                return Err(format!("stencil:{w},{t}: need W,T ≥ 1 and W·T ≤ 2^27"));
            }
            Ok(stencil_trace(w, t))
        }
        _ => Err(usage()),
    }
}

/// Configuration for one watch run.
#[derive(Clone, Debug)]
pub struct WatchConfig {
    /// Workload spec (`fib:N` | `matmul:N` | `stencil:W,T`) — kept for
    /// the fingerprint and report labels.
    pub workload: String,
    /// Simulated BACKER processors.
    pub procs: usize,
    /// Cache lines per processor (occupancy bound of each `LeanCache`).
    pub cache_lines: usize,
    /// Block size of the block-cyclic node→processor assignment.
    pub block: usize,
    /// Protocol fault switches (a faulted run is *expected* to leave LC).
    pub faults: FaultInjection,
    /// Wall-clock budget; exceeded ⇒ Partial with a resume frontier.
    pub deadline: Option<Duration>,
    /// Conformance-sample every this many commits (0 disables sampling).
    pub sample_every: usize,
    /// Only prefixes up to this length are sampled — the batch `Sc`
    /// checker is NP-complete, so the dense cross-check must stay small.
    pub sample_cap: usize,
}

impl WatchConfig {
    /// Defaults: 4 processors, 16-line caches, block 16, no faults,
    /// sample every 8th commit over the first 24 nodes.
    pub fn new(workload: impl Into<String>) -> Self {
        WatchConfig {
            workload: workload.into(),
            procs: 4,
            cache_lines: 16,
            block: 16,
            faults: FaultInjection::NONE,
            deadline: None,
            sample_every: 8,
            sample_cap: 24,
        }
    }

    /// The checkpoint fingerprint: pins everything that makes the
    /// replay-based resume deterministic.
    pub fn fingerprint(&self) -> String {
        format!(
            "ccmm-watch-v1 workload={} procs={} cache_lines={} block={} skip_flush={} \
             skip_reconcile={} sample_every={} sample_cap={}",
            self.workload,
            self.procs,
            self.cache_lines,
            self.block,
            self.faults.skip_flush,
            self.faults.skip_reconcile,
            self.sample_every,
            self.sample_cap
        )
    }
}

/// The journalled state of an interrupted watch: where the stream
/// stopped plus every deterministic counter. Protocol state (caches,
/// main memory, last-writer indices) is deliberately absent — a resume
/// replays to `position` and re-derives it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchSnapshot {
    /// Nodes committed (the stream resumes at this index).
    pub position: usize,
    /// Validity violations seen in the prefix.
    pub validity_violations: u64,
    /// Streaming-SC violations seen in the prefix.
    pub sc_violations: u64,
    /// Streaming-LC violations seen in the prefix.
    pub lc_violations: u64,
    /// Conformance samples already taken.
    pub samples: u64,
    /// Streaming-vs-batch divergences already seen.
    pub divergences: u64,
}

/// Encodes a checkpoint payload (six little-endian u64s).
fn encode_snapshot(s: &WatchSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(48);
    ckpt::put_u64(&mut out, s.position as u64);
    ckpt::put_u64(&mut out, s.validity_violations);
    ckpt::put_u64(&mut out, s.sc_violations);
    ckpt::put_u64(&mut out, s.lc_violations);
    ckpt::put_u64(&mut out, s.samples);
    ckpt::put_u64(&mut out, s.divergences);
    out
}

/// Decodes a checkpoint payload (inverse of the journal encoding).
pub fn decode_snapshot(mut bytes: &[u8]) -> Option<WatchSnapshot> {
    let s = WatchSnapshot {
        position: ckpt::get_u64(&mut bytes)? as usize,
        validity_violations: ckpt::get_u64(&mut bytes)?,
        sc_violations: ckpt::get_u64(&mut bytes)?,
        lc_violations: ckpt::get_u64(&mut bytes)?,
        samples: ckpt::get_u64(&mut bytes)?,
        divergences: ckpt::get_u64(&mut bytes)?,
    };
    bytes.is_empty().then_some(s)
}

/// Journalling plumbing for [`run_supervised`].
pub struct WatchCkpt<'a> {
    /// Open journal (created with the config's fingerprint).
    pub writer: &'a mut ckpt::CkptWriter,
    /// Snapshot every this many committed nodes.
    pub every: usize,
}

/// The outcome of a watch run.
#[derive(Debug)]
pub struct WatchReport {
    /// Supervision verdict (Complete / Degraded / Partial).
    pub status: SweepStatus,
    /// Workload label from the config.
    pub workload: String,
    /// Trace length in nodes.
    pub nodes_total: usize,
    /// Committed node indices (always the prefix `0..position`).
    pub frontier: Frontier,
    /// Cumulative streaming verdicts over the committed prefix.
    pub verdicts: StreamVerdicts,
    /// Conformance samples taken (including resumed-from ones).
    pub samples: u64,
    /// Streaming-vs-batch verdict disagreements — must be 0.
    pub divergences: u64,
    /// Prefix length of the first divergence, if any.
    pub first_divergence: Option<usize>,
    /// Conformance samples quarantined after panicking twice
    /// (`task_idx` is the prefix length that was being sampled).
    pub quarantined: Vec<Quarantined>,
    /// Merged protocol counters from the streaming runner.
    pub stats: Stats,
    /// Wall time of this run (excludes any resumed-from run).
    pub wall: Duration,
    /// Nodes committed by *this* run (excludes the replayed prefix).
    pub fresh_reveals: u64,
    /// Fresh reveals per second of wall time.
    pub reveals_per_sec: f64,
    /// Peak resident set (VmHWM) in KiB; 0 where /proc is unavailable.
    pub peak_rss_kb: u64,
    /// A checkpoint-append failure, if journalling stopped.
    pub ckpt_error: Option<String>,
}

impl WatchReport {
    /// Whether the stream completed, the execution is valid and LC, and
    /// every conformance sample agreed with the batch checkers. (SC is
    /// reported but not required — BACKER guarantees LC, not SC.)
    pub fn passed(&self) -> bool {
        self.status == SweepStatus::Complete
            && self.verdicts.valid
            && self.verdicts.lc
            && self.divergences == 0
    }

    /// The resumable snapshot equivalent to this report's end state.
    pub fn snapshot(&self) -> WatchSnapshot {
        WatchSnapshot {
            position: self.frontier.len(),
            validity_violations: self.verdicts.validity_violations,
            sc_violations: self.verdicts.sc_violations,
            lc_violations: self.verdicts.lc_violations,
            samples: self.samples,
            divergences: self.divergences,
        }
    }
}

/// Peak resident set size (VmHWM) in KiB, or 0 where unavailable.
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Densifies the first `k` nodes of `trace`, installs the streamed
/// observations over the last-writer completion, and runs the exact
/// batch checkers. Returns `(valid, sc, lc)` for the completed pair —
/// precisely what the streaming verdicts claim to decide.
fn batch_prefix_verdicts(trace: &RawTrace, obs: &[Option<NodeId>], k: usize) -> (bool, bool, bool) {
    let mut edges = Vec::new();
    for v in 0..k {
        for &p in trace.dag.predecessors(NodeId::new(v)) {
            edges.push((p.index(), v));
        }
    }
    let c = Computation::from_edges(k, &edges, trace.ops[..k].to_vec());
    let order: Vec<NodeId> = (0..k).map(NodeId::new).collect();
    // Φ̂ = commit-order last-writer completion, overridden at every
    // accessed entry by what the protocol actually delivered.
    let mut phi = last_writer_function(&c, &order);
    for (v, &o) in obs.iter().enumerate().take(k) {
        if let Some(l) = trace.ops[v].location() {
            phi.set(l, NodeId::new(v), o);
        }
    }
    let valid = phi.is_valid_for(&c);
    let mut scratch = CheckScratch::new();
    let sc = valid && Sc.contains_with(&c, &phi, &mut scratch);
    let lc = valid && Lc.contains_with(&c, &phi, &mut scratch);
    (valid, sc, lc)
}

/// Runs the watch loop under supervision. See the module docs for the
/// full contract; `resume` must come from a journal whose fingerprint
/// matched this config, and the function fails (rather than silently
/// mis-resuming) if the deterministic replay disagrees with the
/// snapshot's counters.
pub fn run_supervised(
    cfg: &WatchConfig,
    trace: &RawTrace,
    resume: Option<WatchSnapshot>,
    mut ckpt_sink: Option<WatchCkpt<'_>>,
) -> Result<WatchReport, String> {
    let total = trace.node_count();
    let snap = resume.unwrap_or_default();
    if snap.position > total {
        return Err(format!("snapshot position {} exceeds trace length {total}", snap.position));
    }
    let sp = trace.sp_order();
    let mut checker = StreamChecker::new(sp, trace.num_locations);
    let backer = BackerConfig::with_processors(cfg.procs.max(1))
        .cache_capacity(cfg.cache_lines.max(1))
        .faults(cfg.faults);
    let mut runner = StreamRunner::new(trace.num_locations, &backer, cfg.block);

    let mut obs_buf: Vec<Option<NodeId>> = Vec::with_capacity(cfg.sample_cap.min(total));
    let mut samples = snap.samples;
    let mut divergences = snap.divergences;
    let mut first_divergence = None;
    let mut quarantined: Vec<Quarantined> = Vec::new();
    let mut status = SweepStatus::Complete;
    let mut ckpt_error: Option<String> = None;
    let mut since_ckpt = 0usize;
    let start = Instant::now();

    while let Some((u, op, observed)) = runner.step(&trace.dag, &trace.ops) {
        checker.commit(u, op, observed);
        let k = u.index() + 1;
        if u.index() < cfg.sample_cap {
            obs_buf.push(observed);
        }

        // Replay segment of a resumed run: no sampling, no journalling,
        // no deadline — just re-derive the protocol + checker state.
        if k <= snap.position {
            if k == snap.position {
                let v = checker.verdicts();
                if (v.validity_violations, v.sc_violations, v.lc_violations)
                    != (snap.validity_violations, snap.sc_violations, snap.lc_violations)
                {
                    return Err(format!(
                        "resume replay diverged from snapshot at node {k}: replay counted \
                         ({}, {}, {}) violations, journal recorded ({}, {}, {})",
                        v.validity_violations,
                        v.sc_violations,
                        v.lc_violations,
                        snap.validity_violations,
                        snap.sc_violations,
                        snap.lc_violations
                    ));
                }
            }
            continue;
        }

        // Conformance sample: densify the prefix and cross-check the
        // streaming verdicts against the exact batch checkers.
        if cfg.sample_every > 0 && k <= cfg.sample_cap && k.is_multiple_of(cfg.sample_every) {
            let sv = checker.verdicts();
            let streamed = (sv.valid, sv.sc, sv.lc);
            let run_once = || batch_prefix_verdicts(trace, &obs_buf, k);
            let batch = match catch_unwind(AssertUnwindSafe(run_once)) {
                Ok(b) => Some(b),
                Err(_first) => match catch_unwind(AssertUnwindSafe(run_once)) {
                    Ok(b) => Some(b),
                    Err(second) => {
                        telemetry::count(telemetry::Counter::Quarantines, 1);
                        quarantined.push(Quarantined {
                            task_idx: k,
                            size: k,
                            payload: ccmm_core::fault::payload_string(second),
                        });
                        None
                    }
                },
            };
            if let Some(batch) = batch {
                samples += 1;
                if streamed != batch {
                    divergences += 1;
                    telemetry::count(telemetry::Counter::WatchDivergences, 1);
                    if first_divergence.is_none() {
                        first_divergence = Some(k);
                    }
                }
            }
        }

        // Journal a snapshot every `every` fresh commits.
        if let Some(sink) = ckpt_sink.as_mut() {
            if ckpt_error.is_none() {
                since_ckpt += 1;
                if since_ckpt >= sink.every.max(1) {
                    since_ckpt = 0;
                    let v = checker.verdicts();
                    let s = WatchSnapshot {
                        position: k,
                        validity_violations: v.validity_violations,
                        sc_violations: v.sc_violations,
                        lc_violations: v.lc_violations,
                        samples,
                        divergences,
                    };
                    match sink.writer.append(&encode_snapshot(&s)) {
                        Ok(()) => telemetry::count(telemetry::Counter::CkptRecords, 1),
                        Err(e) => ckpt_error = Some(e.to_string()),
                    }
                }
            }
        }

        // Deadline + progress, amortised to every 1024 commits.
        if k & 1023 == 0 {
            telemetry::progress_tick(k, total, quarantined.len());
            if cfg.deadline.is_some_and(|d| start.elapsed() >= d) {
                status = SweepStatus::Partial;
                break;
            }
        }
    }

    let position = runner.position();
    let wall = start.elapsed();

    // Final snapshot so a Partial run resumes at its exact frontier
    // rather than the last periodic record.
    if let Some(sink) = ckpt_sink.as_mut() {
        if ckpt_error.is_none() && position > snap.position {
            let v = checker.verdicts();
            let s = WatchSnapshot {
                position,
                validity_violations: v.validity_violations,
                sc_violations: v.sc_violations,
                lc_violations: v.lc_violations,
                samples,
                divergences,
            };
            match sink.writer.append(&encode_snapshot(&s)) {
                Ok(()) => telemetry::count(telemetry::Counter::CkptRecords, 1),
                Err(e) => ckpt_error = Some(e.to_string()),
            }
        }
    }

    if status == SweepStatus::Complete && !quarantined.is_empty() {
        status = SweepStatus::Degraded;
    }
    let mut frontier = Frontier::new();
    for i in 0..position {
        frontier.insert(i);
    }
    let fresh = (position - snap.position) as u64;
    Ok(WatchReport {
        status,
        workload: cfg.workload.clone(),
        nodes_total: total,
        frontier,
        verdicts: checker.verdicts(),
        samples,
        divergences,
        first_divergence,
        quarantined,
        stats: runner.stats(),
        wall,
        fresh_reveals: fresh,
        reveals_per_sec: fresh as f64 / wall.as_secs_f64().max(1e-9),
        peak_rss_kb: peak_rss_kb(),
        ckpt_error,
    })
}

/// Convenience entry: no resume, no journal.
pub fn run(cfg: &WatchConfig, trace: &RawTrace) -> Result<WatchReport, String> {
    run_supervised(cfg, trace, None, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_specs_parse_and_reject() {
        assert!(parse_trace_workload("fib:6").is_ok());
        assert!(parse_trace_workload("matmul:4").is_ok());
        assert!(parse_trace_workload("stencil:4,3").is_ok());
        for bad in ["fib", "fib:x", "fib:40", "matmul:3", "matmul:0", "stencil:4", "mystery:1"] {
            assert!(parse_trace_workload(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn clean_run_is_lc_with_zero_divergences() {
        for spec in ["fib:8", "matmul:4", "stencil:4,3"] {
            let trace = parse_trace_workload(spec).expect("spec");
            let mut cfg = WatchConfig::new(spec);
            cfg.cache_lines = 2; // force eviction traffic through the protocol
            let r = run(&cfg, &trace).expect("run");
            assert!(r.passed(), "{spec}: {r:?}");
            assert!(r.verdicts.sc, "{spec}: race-free correct runs are also SC");
            assert_eq!(r.frontier.len(), trace.node_count());
            assert!(r.samples > 0, "{spec}: sampling must have fired");
            assert_eq!(r.divergences, 0);
        }
    }

    #[test]
    fn faulted_run_violates_lc_and_batch_agrees() {
        let trace = parse_trace_workload("fib:8").expect("spec");
        let mut cfg = WatchConfig::new("fib:8");
        cfg.faults = FaultInjection { skip_flush: false, skip_reconcile: true };
        cfg.sample_every = 2; // sample densely so a violating prefix is cross-checked
        let r = run(&cfg, &trace).expect("run");
        assert!(!r.verdicts.lc, "skip-reconcile must leave LC");
        assert!(!r.passed());
        // The race-free exactness argument in ccmm_core::stream says the
        // batch checkers reach the same verdict on every sampled prefix.
        assert_eq!(r.divergences, 0, "first divergence at {:?}", r.first_divergence);
        assert!(r.samples > 0);
    }

    #[test]
    fn deadline_partial_resumes_to_identical_verdicts() {
        let spec = "fib:12";
        let trace = parse_trace_workload(spec).expect("spec");
        let mut cfg = WatchConfig::new(spec);
        cfg.deadline = Some(Duration::ZERO);
        let partial = run(&cfg, &trace).expect("partial run");
        assert_eq!(partial.status, SweepStatus::Partial);
        let stopped = partial.frontier.len();
        assert!(stopped > 0 && stopped < trace.node_count(), "stopped at {stopped}");
        assert_eq!(partial.frontier.ranges(), &[(0, stopped)]);

        cfg.deadline = None;
        let resumed =
            run_supervised(&cfg, &trace, Some(partial.snapshot()), None).expect("resumed run");
        assert_eq!(resumed.status, SweepStatus::Complete);
        let fresh = run(&cfg, &trace).expect("uninterrupted run");
        assert_eq!(resumed.verdicts, fresh.verdicts, "resume must land on identical verdicts");
        assert_eq!(resumed.fresh_reveals as usize, trace.node_count() - stopped);
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let s = WatchSnapshot {
            position: 12345,
            validity_violations: 1,
            sc_violations: 2,
            lc_violations: 3,
            samples: 4,
            divergences: 5,
        };
        let bytes = encode_snapshot(&s);
        assert_eq!(decode_snapshot(&bytes), Some(s));
        assert_eq!(decode_snapshot(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn corrupt_snapshot_counters_fail_the_replay_check() {
        let trace = parse_trace_workload("fib:8").expect("spec");
        let cfg = WatchConfig::new("fib:8");
        let full = run(&cfg, &trace).expect("run");
        let mut snap = full.snapshot();
        snap.position = trace.node_count() / 2;
        snap.lc_violations = 99; // a clean run counted zero
        let err = run_supervised(&cfg, &trace, Some(snap), None).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }
}
