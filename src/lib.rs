//! # ccmm — computation-centric memory models
//!
//! An executable reproduction of Frigo & Luchangco, *Computation-Centric
//! Memory Models* (SPAA 1998). This facade crate re-exports the
//! workspace:
//!
//! * [`dag`] — dag substrate (reachability, topological sorts, poset
//!   universes, generators);
//! * [`core`] — computations, observer functions, the SC / LC /
//!   NN / NW / WN / WW model checkers, constructibility machinery, paper
//!   witnesses, litmus tests;
//! * [`backer`] — the BACKER coherence algorithm (simulator + threaded
//!   executor) with LC verification;
//! * [`cilk`] — fork/join program builder and workloads;
//! * [`conformance`] — differential testing of every fast model checker
//!   against its definitional oracle, with counterexample shrinking.
//!
//! Start with `examples/quickstart.rs`.

pub use ccmm_backer as backer;
pub use ccmm_cilk as cilk;
pub use ccmm_conformance as conformance;
pub use ccmm_core as core;
pub use ccmm_dag as dag;

pub mod client;
pub mod serve;
pub mod stress;
pub mod watch;
