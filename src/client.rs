//! The `ccmm query` client: framed round-trips with timeouts, capped
//! exponential backoff, and seeded jitter.
//!
//! The client is deliberately paranoid about the transport — the serve
//! fault plan tears frames, drops connections, and delays replies on
//! purpose — and deliberately trusting of reply *contents*: a decoded
//! [`Reply`] is final. Retries happen only on transport failures
//! (connect/read/write errors, EOF, torn frames) and on the two
//! explicitly-retryable statuses, `overloaded` (after at least its
//! `retry-after-ms` hint) and `shutting-down`. Verdict-bearing replies
//! (`ok`, `error`, `degraded`, `partial`) are never retried: retrying a
//! verdict would mask nondeterminism instead of measuring it.
//!
//! Backoff is capped exponential with seeded half-jitter: attempt `k`
//! sleeps `base·2^k` capped at `cap`, minus up to half of itself chosen
//! by a splitmix64 stream over the seed — deterministic per seed, so
//! soak failures replay with the same timing shape.

use ccmm_core::serve::{encode_frame, mix64, FrameDecoder, FrameEvent, Reply, MAX_FRAME};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Capped exponential backoff with seeded jitter.
#[derive(Clone, Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    seed: u64,
    attempt: u32,
}

impl Backoff {
    /// A fresh schedule: attempt `k` waits ~`base_ms << k`, capped.
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff { base_ms, cap_ms, seed, attempt: 0 }
    }

    /// The next delay. `floor_ms` lifts the wait to at least the
    /// server's `retry-after-ms` hint when one was given.
    pub fn next_delay(&mut self, floor_ms: u64) -> Duration {
        let raw = self.base_ms.saturating_shl(self.attempt.min(16)).min(self.cap_ms);
        self.attempt += 1;
        // Half-jitter: keep [raw/2, raw], deterministically per seed.
        let jitter =
            if raw > 1 { mix64(self.seed ^ self.attempt as u64) % (raw / 2 + 1) } else { 0 };
        Duration::from_millis((raw - jitter).max(floor_ms))
    }

    /// Attempts taken so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        if n >= 64 || self > (u64::MAX >> n) {
            u64::MAX
        } else {
            self << n
        }
    }
}

/// A transport-level failure (retryable, unlike a decoded [`Reply`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Connecting failed.
    Connect(String),
    /// The socket errored mid-round-trip.
    Io(String),
    /// The peer closed before a whole reply frame arrived (includes
    /// injected drops and truncations).
    TornReply,
    /// No reply within the timeout.
    TimedOut,
    /// The reply frame arrived but did not decode.
    BadReply(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Connect(e) => write!(f, "connect failed: {e}"),
            TransportError::Io(e) => write!(f, "transport error: {e}"),
            TransportError::TornReply => write!(f, "connection closed mid-reply (torn frame)"),
            TransportError::TimedOut => write!(f, "timed out waiting for a reply"),
            TransportError::BadReply(e) => write!(f, "undecodable reply: {e}"),
        }
    }
}

/// One framed connection to a server.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    timeout: Duration,
}

impl Connection {
    /// Connects with `timeout_ms` applied to the connect *and* each
    /// subsequent round-trip.
    pub fn connect(addr: &str, timeout_ms: u64) -> Result<Connection, TransportError> {
        let timeout = Duration::from_millis(timeout_ms.max(1));
        let sockaddr: std::net::SocketAddr =
            addr.parse().map_err(|e| TransportError::Connect(format!("bad address: {e}")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)
            .map_err(|e| TransportError::Connect(e.to_string()))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .map_err(|e| TransportError::Connect(e.to_string()))?;
        Ok(Connection { stream, decoder: FrameDecoder::new(), timeout })
    }

    /// Sends one request payload and waits for its reply frame.
    pub fn roundtrip(&mut self, payload: &[u8]) -> Result<Reply, TransportError> {
        self.stream
            .write_all(&encode_frame(payload))
            .and_then(|_| self.stream.flush())
            .map_err(|e| TransportError::Io(e.to_string()))?;
        let deadline = Instant::now() + self.timeout;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(event) = self.decoder.next_event() {
                return match event {
                    FrameEvent::Frame(p) => Reply::decode(&p).map_err(TransportError::BadReply),
                    FrameEvent::Oversized { len } => Err(TransportError::BadReply(format!(
                        "reply frame of {len} bytes exceeds the {MAX_FRAME} byte cap"
                    ))),
                };
            }
            if Instant::now() >= deadline {
                return Err(TransportError::TimedOut);
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(TransportError::TornReply),
                Ok(n) => self.decoder.push(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(e) => return Err(TransportError::Io(e.to_string())),
            }
        }
    }
}

/// The outcome of [`query_with_retries`]: the final reply plus how the
/// transport behaved getting it.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The decoded reply (None if every attempt failed in transport).
    pub reply: Option<Reply>,
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Transport failures along the way, for diagnostics.
    pub transport_errors: Vec<TransportError>,
}

/// Sends `payload` to `addr`, retrying transport failures and
/// `overloaded`/`shutting-down` replies up to `retries` times with
/// seeded backoff. Each attempt reconnects — under a fault plan that
/// drops and tears connections, a fresh connection per attempt is the
/// simplest correct recovery.
pub fn query_with_retries(
    addr: &str,
    payload: &[u8],
    timeout_ms: u64,
    retries: u32,
    seed: u64,
) -> QueryOutcome {
    let mut backoff = Backoff::new(5, 250, seed);
    let mut transport_errors = Vec::new();
    let mut attempts = 0;
    loop {
        attempts += 1;
        let outcome =
            Connection::connect(addr, timeout_ms).and_then(|mut conn| conn.roundtrip(payload));
        let (floor, last_reply) = match outcome {
            Ok(Reply::Overloaded { retry_after_ms }) => {
                (retry_after_ms, Some(Reply::Overloaded { retry_after_ms }))
            }
            Ok(Reply::ShuttingDown) => (0, Some(Reply::ShuttingDown)),
            Ok(reply) => {
                return QueryOutcome { reply: Some(reply), attempts, transport_errors };
            }
            Err(e) => {
                transport_errors.push(e);
                (0, None)
            }
        };
        if attempts > retries {
            // Give up: report the last overloaded/shutting-down reply if
            // there was one, else a pure transport failure.
            return QueryOutcome { reply: last_reply, attempts, transport_errors };
        }
        std::thread::sleep(backoff.next_delay(floor));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        let mut a = Backoff::new(5, 100, 42);
        let mut b = Backoff::new(5, 100, 42);
        let mut last = Duration::ZERO;
        for k in 0..12 {
            let da = a.next_delay(0);
            let db = b.next_delay(0);
            assert_eq!(da, db, "attempt {k}: same seed, same delay");
            assert!(da <= Duration::from_millis(100), "cap respected at attempt {k}");
            last = da;
        }
        assert!(last >= Duration::from_millis(50), "late attempts sit in [cap/2, cap]");
        // The floor lifts short waits to the server's hint.
        let mut c = Backoff::new(1, 2, 0);
        assert!(c.next_delay(40) >= Duration::from_millis(40));
        // Different seeds jitter differently somewhere.
        let mut d = Backoff::new(5, 100, 43);
        let mut e = Backoff::new(5, 100, 44);
        assert!((0..12).any(|_| d.next_delay(0) != e.next_delay(0)));
    }

    #[test]
    fn connect_to_nothing_is_a_transport_error_not_a_panic() {
        // Port 1 on localhost is essentially never listening.
        let err = Connection::connect("127.0.0.1:1", 200).unwrap_err();
        assert!(matches!(err, TransportError::Connect(_)), "{err:?}");
        let out = query_with_retries("127.0.0.1:1", b"x", 100, 1, 7);
        assert!(out.reply.is_none());
        assert_eq!(out.attempts, 2, "one retry after the first failure");
        assert_eq!(out.transport_errors.len(), 2);
    }
}
