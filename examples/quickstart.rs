//! Quickstart: build a computation, give it an observer function, and ask
//! the six models of the paper whether they allow it.
//!
//! Run with: `cargo run --example quickstart`

use ccmm::core::{Computation, Location, Model, ObserverFunction, Op};
use ccmm::dag::NodeId;

fn main() {
    let l = Location::new(0);

    // A four-node computation: two parallel writers, then two readers
    // that both follow both writers (the diamond of Figure 4).
    //
    //   n0: W(l) ──► n2: R(l)
    //        ╲     ╱
    //         ╲   ╱
    //          ╲ ╱  (all four edges)
    //          ╱ ╲
    //   n1: W(l) ──► n3: R(l)
    let c = Computation::from_edges(
        4,
        &[(0, 2), (1, 2), (0, 3), (1, 3)],
        vec![Op::Write(l), Op::Write(l), Op::Read(l), Op::Read(l)],
    );
    println!("computation: {c:?}\n");

    // Observer function: each read picks a different writer — the
    // "crossing" observation that separates LC from NN-dag consistency.
    let crossing = ObserverFunction::base(&c).with(l, NodeId::new(2), Some(NodeId::new(0))).with(
        l,
        NodeId::new(3),
        Some(NodeId::new(1)),
    );

    // And the agreeing variant: both reads see writer n1.
    let agreeing = ObserverFunction::base(&c).with(l, NodeId::new(2), Some(NodeId::new(1))).with(
        l,
        NodeId::new(3),
        Some(NodeId::new(1)),
    );

    println!("model memberships:");
    println!("{:<10} {:>10} {:>10}", "model", "crossing", "agreeing");
    for m in Model::ALL {
        println!(
            "{:<10} {:>10} {:>10}",
            m.name(),
            m.contains(&c, &crossing),
            m.contains(&c, &agreeing)
        );
    }

    println!();
    println!("The crossing observation is NN-dag consistent — no path");
    println!("connects the two reads — but not location consistent: no");
    println!("serialization of l puts each writer last for its reader.");
    println!("That gap is Theorem 22 (LC ⊊ NN); closing it by demanding");
    println!("online implementability is Theorem 23 (LC = NN*).");
}
