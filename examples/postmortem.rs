//! Post-mortem analysis, the paper's §1 use case: after a system has
//! finished executing, check from the observed values alone whether its
//! behaviour fits a memory model — plus determinacy-race detection on the
//! program's computation.
//!
//! Run with: `cargo run --example postmortem`

use ccmm::backer::{sim, BackerConfig, FaultInjection, Schedule};
use ccmm::cilk::race;
use ccmm::core::trace::{explain_lc, explain_sc, ValueTrace};
use ccmm::core::Op;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // A race-free fork/join program.
    let program = ccmm::cilk::stencil(6, 3);
    let c = &program.computation;
    println!("stencil(6,3): {} nodes, race-free: {}", c.node_count(), race::is_race_free(c));

    // Execute under BACKER, then FORGET the observer function — keep only
    // the values the reads returned (what a real post-mortem log has).
    let s = Schedule::work_stealing(c, 4, &mut rng);
    let r = sim::run(c, &s, &BackerConfig::with_processors(4).cache_capacity(8));
    let reads: Vec<_> = c
        .nodes()
        .filter_map(|u| match c.op(u) {
            Op::Read(l) => Some((u, r.observer.get(l, u).map_or(0, |w| w.index() as u64 + 1))),
            _ => None,
        })
        .collect();
    println!("recorded {} read values from one 4-processor run", reads.len());

    let trace = ValueTrace::with_tokens(c, reads);
    let lc_ok = explain_lc(c, &trace).is_some();
    let sc_ok = explain_sc(c, &trace).is_some();
    println!("trace explainable under LC: {lc_ok}");
    println!("trace explainable under SC: {sc_ok} (race-free ⇒ serial semantics)");
    assert!(lc_ok && sc_ok);

    // Now a faulty memory: skip the flush leg of the protocol.
    let broken = BackerConfig::with_processors(4)
        .faults(FaultInjection { skip_flush: true, skip_reconcile: false });
    let mut caught = 0;
    let runs = 20;
    for _ in 0..runs {
        let s = Schedule::random(c, 4, &mut rng);
        let r = sim::run(c, &s, &broken);
        let reads: Vec<_> = c
            .nodes()
            .filter_map(|u| match c.op(u) {
                Op::Read(l) => Some((u, r.observer.get(l, u).map_or(0, |w| w.index() as u64 + 1))),
                _ => None,
            })
            .collect();
        let trace = ValueTrace::with_tokens(c, reads);
        if explain_lc(c, &trace).is_none() {
            caught += 1;
        }
    }
    println!("\nfaulty memory (skip flush), {runs} runs:");
    println!("post-mortem checker rejected {caught}/{runs} value traces");
    assert!(caught > 0);

    // And a racy program: the detector names the conflicting accesses.
    let racy = ccmm::cilk::build_program(|b, s| {
        let l0 = ccmm::core::Location::new(0);
        b.spawn(s, |b, t| {
            b.write(t, l0);
        });
        b.spawn(s, |b, t| {
            b.write(t, l0);
        });
        b.sync(s);
        b.read(s, l0);
    });
    let races = race::find_races(&racy);
    println!("\nracy two-writer program: {} race(s) found:", races.len());
    for r in &races {
        println!(
            "  {} vs {} on {} ({})",
            r.a,
            r.b,
            r.location,
            if r.write_write { "write-write" } else { "read-write" }
        );
    }
    assert!(!races.is_empty());
}
