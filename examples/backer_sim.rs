//! Run the BACKER coherence algorithm on a Cilk fib computation and
//! verify every execution against the model hierarchy.
//!
//! Run with: `cargo run --example backer_sim`

use ccmm::backer::{sim, threads, BackerConfig, FaultInjection, Schedule, VerifyReport};
use ccmm::cilk::fib;
use rand::SeedableRng;

fn main() {
    let program = fib(8);
    let c = &program.computation;
    println!(
        "fib(8): {} nodes, {} edges, {} locations",
        c.node_count(),
        c.dag().edge_count(),
        c.num_locations()
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // 1. Deterministic simulator over random work-stealing schedules.
    let mut report = VerifyReport::default();
    let config = BackerConfig::with_processors(4).cache_capacity(16);
    for _ in 0..50 {
        let s = Schedule::work_stealing(c, 4, &mut rng);
        let r = sim::run(c, &s, &config);
        report.record(ccmm::backer::verify(c, &r.observer));
    }
    println!("\nsimulator, 50 random 4-processor schedules, 16-line caches:");
    println!(
        "  valid: {}/{}  SC: {}  LC: {}  NN: {}  WW: {}",
        report.valid, report.runs, report.sc, report.lc, report.nn, report.ww
    );
    assert!(report.all_lc(), "BACKER must maintain LC [Luc97]");

    // 2. Real threads.
    let mut treport = VerifyReport::default();
    for _ in 0..20 {
        let r = threads::run(c, &BackerConfig::with_processors(4));
        treport.record(ccmm::backer::verify(c, &r.observer));
    }
    println!("\nthreaded executor, 20 runs on 4 workers:");
    println!(
        "  valid: {}/{}  SC: {}  LC: {}  NN: {}  WW: {}",
        treport.valid, treport.runs, treport.sc, treport.lc, treport.nn, treport.ww
    );
    assert!(treport.all_lc());

    // 3. Fault injection. fib never re-reads a location, so skipping the
    // flush cannot surface staleness there; the stencil re-reads every
    // cell each ping-pong round and breaks immediately.
    let program = ccmm::cilk::stencil(6, 4);
    let c = &program.computation;
    let broken = BackerConfig::with_processors(4)
        .faults(FaultInjection { skip_flush: true, skip_reconcile: false });
    let mut violations = 0;
    let runs = 50;
    for _ in 0..runs {
        let s = Schedule::random(c, 4, &mut rng);
        let r = sim::run(c, &s, &broken);
        if !ccmm::backer::verify(c, &r.observer).lc {
            violations += 1;
        }
    }
    println!("\nfault injection (skip flush) on stencil(6, 4), {runs} random runs:");
    println!("  LC violations caught: {violations}/{runs}");
    assert!(violations > 0, "skip-flush must break LC on a re-reading workload");

    println!("\nThese programs are race-free, so dag-consistent memory gives");
    println!("them serial semantics; the faulty protocol breaks exactly that");
    println!("promise, and the post-mortem checker sees it.");
}
