//! Figure 4 live: watch NN-dag consistency get stuck online, then compute
//! its constructible version and find location consistency (Theorem 23).
//!
//! Run with: `cargo run --release --example nonconstructible`

use ccmm::core::constructible::BoundedConstructible;
use ccmm::core::props::any_extension;
use ccmm::core::universe::Universe;
use ccmm::core::witness::{figure4_full, figure4_prefix};
use ccmm::core::{Lc, MemoryModel, Nn, Op};

fn main() {
    // Part 1: the Figure 4 story. An online memory has served these
    // observations (all NN-consistent so far):
    let w = figure4_prefix();
    println!("Figure 4 prefix ({}):", w.names.join(", "));
    println!("{}", w.computation.to_dot("fig4"));
    println!("observer function:\n{}", w.phi.render());
    println!("in NN: {}", Nn::default().contains(&w.computation, &w.phi));
    println!("in LC: {}\n", Lc.contains(&w.computation, &w.phi));

    // The adversary reveals one more node: F, a read, after C and D.
    for op in
        [Op::Read(ccmm::core::Location::new(0)), Op::Nop, Op::Write(ccmm::core::Location::new(0))]
    {
        let full = figure4_full(op);
        let extensible = any_extension(&full, &w.phi, |phi2| Nn::default().contains(&full, phi2));
        println!("extend by {op}: NN-extensible = {extensible}");
    }
    println!();
    println!("Unless F writes, the NN-consistent prefix cannot be extended:");
    println!("NN is not constructible — an online algorithm maintaining NN");
    println!("would already be stuck. (Definition 6 fails.)\n");

    // Part 2: compute the bounded constructible version NN* and compare
    // with LC, size by size.
    let u = Universe::new(4, 1);
    println!("computing the bounded NN* fixpoint over all computations ≤ 4 nodes…");
    let fix = BoundedConstructible::compute(&Nn::default(), &u);
    println!(
        "fixpoint: {} passes, {} pairs deleted, {} pairs survive",
        fix.passes,
        fix.deleted,
        fix.total_pairs()
    );
    println!("\n{:<6} {:>12} {:>12} {:>14}", "size", "NN* pairs", "LC pairs", "disagreements");
    for n in 0..u.max_nodes {
        let a = fix.agreement_with(&Lc, n, &u);
        println!("{:<6} {:>12} {:>12} {:>14}", n, a.survivors, a.in_model, a.disagreements);
        assert_eq!(a.disagreements, 0, "Theorem 23 violated at size {n}");
    }
    println!("\nLC = NN* on every size below the boundary — Theorem 23 ✓");
}
