//! Reproduce Figure 1: the lattice of models, machine-checked over an
//! exhaustive universe of small computations.
//!
//! Run with: `cargo run --release --example lattice`

use ccmm::core::relation::{compare, Relation};
use ccmm::core::universe::Universe;
use ccmm::core::Model;

fn main() {
    // 4-node computations over one location: 3,451 computations, every
    // valid observer function of each.
    let u = Universe::new(4, 1);
    let models = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];

    println!("pairwise relations over all computations ≤ {} nodes, 1 location", u.max_nodes);
    println!("(cell = relation of ROW to COLUMN; ⊊ row strictly stronger)");
    print!("{:<6}", "");
    for b in models {
        print!("{:>6}", b.name());
    }
    println!();
    for a in models {
        print!("{:<6}", a.name());
        for b in models {
            let rel = compare(&a, &b, &u).relation;
            print!("{:>6}", rel.to_string());
        }
        println!();
    }

    println!();
    println!("Expected from Figure 1 (single location, so SC = LC here;");
    println!("they separate with ≥ 2 locations — see the litmus example):");
    println!("  LC ⊊ NN ⊊ NW, WN ⊊ WW, with NW ∥ WN.");

    // Verify the chain programmatically.
    let chain = [
        (Model::Lc, Model::Nn),
        (Model::Nn, Model::Nw),
        (Model::Nn, Model::Wn),
        (Model::Nw, Model::Ww),
        (Model::Wn, Model::Ww),
    ];
    for (a, b) in chain {
        let rel = compare(&a, &b, &u).relation;
        assert_eq!(rel, Relation::StrictlyStronger, "{a} vs {b}: {rel}");
    }
    let nw_wn = compare(&Model::Nw, &Model::Wn, &u).relation;
    assert_eq!(nw_wn, Relation::Incomparable);
    println!("\nall Figure-1 relations verified ✓");
}
