//! Litmus tests across the model lattice: which classic relaxed-memory
//! outcomes does each model of the paper admit?
//!
//! Run with: `cargo run --example litmus`

use ccmm::core::litmus::standard_tests;
use ccmm::core::Model;

fn main() {
    let models = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];

    for test in standard_tests() {
        println!("=== {} ===", test.name);
        println!("{}", test.note);
        println!("{}", test.computation.to_dot(test.name));
        println!(
            "{:<8} {:>10} {:>60}",
            "model", "#outcomes", "outcomes (tuples of observed read tokens)"
        );
        for m in models {
            let outs = test.outcomes(&m);
            let rendered: Vec<String> = outs.iter().map(|o| format!("{o:?}")).collect();
            let mut line = rendered.join(" ");
            if line.len() > 58 {
                line.truncate(55);
                line.push('…');
            }
            println!("{:<8} {:>10} {:>60}", m.name(), outs.len(), line);
        }
        println!();
    }

    println!("Reading the table: outcome tuples list what each observed");
    println!("read returned (0 = initial value, k = token of write node");
    println!("k-1). Weaker models admit supersets — the lattice of");
    println!("Figure 1 as observable program behaviour.");
}
