//! Offline, API-compatible subset of `proptest`.
//!
//! Covers the surface this workspace uses: the [`proptest!`] macro with a
//! `proptest_config` attribute, [`strategy::Strategy`] combinators
//! (`prop_map`, `prop_flat_map`, `prop_recursive`, tuples, ranges,
//! [`collection::vec`]), [`strategy::Just`], [`arbitrary::any`], and the
//! `prop_assert*`/[`prop_oneof!`] macros.
//!
//! Differences from upstream: inputs are generated from a per-test
//! deterministic RNG (seeded from the test name and case index, so failures
//! reproduce across runs) and failing cases are **not shrunk** — the
//! `prop_assert*` macros panic directly with their message.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::sync::Arc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Bounded-depth recursive strategy. `_desired_size` and
        /// `_expected_branch` are accepted for signature compatibility;
        /// depth alone bounds the recursion here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut strat = base.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                // Prefer recursion 3:1 so trees actually grow; the loop
                // bound still guarantees termination at `depth` levels.
                strat = Union::weighted(vec![(1, base.clone()), (3, deeper)]).boxed();
            }
            strat
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait StrategyObj<T> {
        fn generate_obj(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> StrategyObj<S::Value> for S {
        fn generate_obj(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn StrategyObj<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Chooses among alternatives, optionally weighted.
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            Self::weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!options.is_empty(), "Union needs at least one option");
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "Union needs positive total weight");
            Union { options, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights summed to total_weight")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary_value(rng: &mut StdRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length specification: a fixed size or a range of sizes.
    pub trait SizeSpec {
        fn pick_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeSpec for usize {
        fn pick_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeSpec for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeSpec for std::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy: `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Run-time configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `body` for each case with a per-case deterministic RNG.
    pub fn run_cases(config: &Config, test_name: &str, body: impl Fn(&mut StdRng)) {
        let base = fnv1a(test_name);
        for case in 0..config.cases {
            let mut rng =
                StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            body(&mut rng);
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each function body runs once per case with
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                    let ($($pat,)+) = (
                        $( $crate::strategy::Strategy::generate(&($strat), __rng), )+
                    );
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a property test (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test (no shrinking: panics).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniformly (or by the structure of its arms) chooses among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = (1..=8usize)
            .prop_flat_map(|n| crate::collection::vec(any::<bool>(), n).prop_map(move |v| (n, v)));
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn union_covers_all_arms() {
        use crate::strategy::{Just, Strategy};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        use crate::strategy::{Just, Strategy};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf,
            Pair(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(4, 24, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = StdRng::seed_from_u64(3);
        let mut max_depth = 0;
        for _ in 0..100 {
            let t = s.generate(&mut rng);
            let d = depth(&t);
            assert!(d <= 4, "depth bound exceeded: {d}");
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "recursion never fired (max depth {max_depth})");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuple_patterns((n, bits) in (2..=5usize).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(any::<bool>(), n))
        }), seed in any::<u64>()) {
            prop_assert_eq!(bits.len(), n);
            prop_assert!((2..=5).contains(&n), "n out of range: {} (seed {})", n, seed);
        }
    }
}
