//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the slice of `rand 0.8` it actually uses: the [`Rng`] trait with
//! `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and a
//! deterministic [`rngs::StdRng`]. The generator is xoshiro256++ seeded
//! via SplitMix64 — high-quality and fast, though not the ChaCha stream
//! cipher of upstream `StdRng` (none of this workspace's uses are
//! cryptographic; they are seeded simulations and property tests).

/// A source of randomness, mirroring the `rand::Rng` surface this
/// workspace uses.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`). Panics on an empty range, like upstream. The element
    /// type is inferred from the use site, as with upstream's
    /// `SampleRange<T>`.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A uniform sample of `T` over its whole domain (upstream's
    /// `gen::<T>()` with the `Standard` distribution).
    fn gen<T: UniformSample>(&mut self) -> T {
        T::uniform_sample(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        // 53 uniform mantissa bits, exactly representable in f64.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical whole-domain uniform distribution, backing
/// [`Rng::gen`] (upstream's `Standard` distribution).
pub trait UniformSample {
    /// Draws one uniform sample over the full domain.
    fn uniform_sample<G: Rng + ?Sized>(rng: &mut G) -> Self;
}

macro_rules! impl_uniform_sample_int {
    ($($t:ty),+) => {$(
        impl UniformSample for $t {
            fn uniform_sample<G: Rng + ?Sized>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_uniform_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for bool {
    fn uniform_sample<G: Rng + ?Sized>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn uniform_sample<G: Rng + ?Sized>(rng: &mut G) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Element types drawable from a range, backing [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<G: Rng + ?Sized>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

/// A range that can be sampled uniformly for element type `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform `u64` in `[lo, hi]` by rejection sampling (no modulo bias).
fn uniform_u64<G: Rng + ?Sized>(rng: &mut G, lo: u64, hi: u64) -> u64 {
    if lo == 0 && hi == u64::MAX {
        return rng.next_u64();
    }
    let span = hi - lo + 1;
    // Rejection zone: values ≥ the largest multiple of `span` would bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return lo + v % span;
        }
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, lo: $t, hi: $t) -> $t {
                uniform_u64(rng, lo as u64, hi as u64 - 1) as $t
            }
            fn sample_inclusive<G: Rng + ?Sized>(rng: &mut G, lo: $t, hi: $t) -> $t {
                uniform_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )+};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_sint {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + uniform_u128(rng, 0, span - 1) as i128) as $t
            }
            fn sample_inclusive<G: Rng + ?Sized>(rng: &mut G, lo: $t, hi: $t) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + uniform_u128(rng, 0, span) as i128) as $t
            }
        }
    )+};
}
impl_sample_uniform_sint!(i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, lo: u128, hi: u128) -> u128 {
        uniform_u128(rng, lo, hi - 1)
    }
    fn sample_inclusive<G: Rng + ?Sized>(rng: &mut G, lo: u128, hi: u128) -> u128 {
        uniform_u128(rng, lo, hi)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<G: Rng + ?Sized>(rng: &mut G, lo: f64, hi: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive<G: Rng + ?Sized>(rng: &mut G, lo: f64, hi: f64) -> f64 {
        Self::sample_half_open(rng, lo, hi)
    }
}

/// Uniform `u128` in `[lo, hi]` by rejection sampling over two 64-bit
/// draws (no modulo bias).
fn uniform_u128<G: Rng + ?Sized>(rng: &mut G, lo: u128, hi: u128) -> u128 {
    let next_u128 = |rng: &mut G| ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    if lo == 0 && hi == u128::MAX {
        return next_u128(rng);
    }
    let span = hi - lo + 1;
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = next_u128(rng);
        if v <= zone {
            return lo + v % span;
        }
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=9u64);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((800..1200).contains(&hits), "p=0.5 produced {hits}/2000");
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
