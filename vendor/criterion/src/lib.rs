//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the surface this workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Behavior matches upstream's two modes:
//! - `cargo bench` passes `--bench`: each benchmark is warmed up, then
//!   timed over `sample_size` samples; mean/min/max wall-clock times are
//!   printed per benchmark.
//! - `cargo test` (no `--bench` flag): each benchmark body runs exactly
//!   once as a smoke test, with no timing.
//!
//! No plotting, no statistics beyond mean/min/max, no baseline storage.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies a benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Accepted wherever upstream takes `impl Into<BenchmarkId>`-ish ids.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times one benchmark body.
pub struct Bencher {
    /// Total time and iteration count accumulated by `iter`.
    elapsed: Duration,
    iterations: u64,
    test_mode: bool,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.iterations = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // One sample = one routine call; the caller loops over samples.
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iterations += 1;
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The top-level harness handle passed to `criterion_group!` functions.
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {} // ignore libtest/criterion flags we don't implement
            }
        }
        Criterion { bench_mode, filter, default_sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let samples = self.default_sample_size;
        self.run_one(&id, samples, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, samples: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if !self.bench_mode {
            // Smoke-test mode under `cargo test`: run the body once.
            let mut b = Bencher { elapsed: Duration::ZERO, iterations: 0, test_mode: true };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Warm-up: one untimed sample.
        let mut warm = Bencher { elapsed: Duration::ZERO, iterations: 0, test_mode: false };
        f(&mut warm);
        let mut times: Vec<Duration> = Vec::with_capacity(samples);
        let budget = Duration::from_secs(5);
        let started = Instant::now();
        for _ in 0..samples.max(2) {
            let mut b = Bencher { elapsed: Duration::ZERO, iterations: 0, test_mode: false };
            f(&mut b);
            if b.iterations > 0 {
                times.push(b.elapsed / b.iterations as u32);
            }
            if started.elapsed() > budget && times.len() >= 2 {
                break; // keep slow benches bounded
            }
        }
        if times.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = *times.iter().min().unwrap();
        let max = *times.iter().max().unwrap();
        println!(
            "{id:<40} time: [{} {} {}]  ({} samples)",
            format_duration(min),
            format_duration(mean),
            format_duration(max),
            times.len()
        );
    }

    /// Upstream-compatible no-op: configuration hook for `criterion_group!`
    /// with a custom config.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(2);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, samples, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Re-exported for convenience parity with upstream.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group_name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lc", 42).into_id(), "lc/42");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
        assert_eq!("plain".into_id(), "plain");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut criterion = Criterion { bench_mode: false, filter: None, default_sample_size: 20 };
        let mut runs = 0;
        {
            let mut group = criterion.benchmark_group("g");
            group.bench_function("once", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut criterion = Criterion { bench_mode: true, filter: None, default_sample_size: 4 };
        let mut runs = 0u32;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(4);
            group.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, _| b.iter(|| runs += 1));
            group.finish();
        }
        // 1 warm-up + 4 samples.
        assert_eq!(runs, 5);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut criterion = Criterion {
            bench_mode: false,
            filter: Some("match_me".to_string()),
            default_sample_size: 20,
        };
        let mut runs = 0;
        criterion.bench_function("other_name", |b| b.iter(|| runs += 1));
        criterion.bench_function("yes_match_me_yes", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
