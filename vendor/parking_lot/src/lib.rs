//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! interface (`lock()` returns the guard directly). Poisoning is
//! deliberately ignored: a panicking critical section aborts the test
//! that owned it, and the recovered data is still structurally valid for
//! the aggregate counters this workspace guards.

use std::sync::PoisonError;

/// A mutual-exclusion lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `t`.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the guarded data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock guarding `t`.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the guarded data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 4000);
    }
}
