//! Offline, API-compatible subset of `crossbeam`.
//!
//! The build environment has no registry access, so this workspace
//! vendors the crossbeam surface it uses: the work-stealing
//! [`deque`] (`Injector`/`Worker`/`Stealer`) and the MPMC [`channel`].
//! The implementations are mutex-based rather than lock-free — the
//! workloads distributed through them (whole posets, whole dag nodes)
//! are coarse enough that queue contention is noise — but the semantics
//! (LIFO worker deques, FIFO stealing and injection, disconnect on last
//! sender drop) match upstream.

pub mod deque {
    //! Work-stealing deques: a global [`Injector`], per-worker
    //! [`Worker`] queues, and [`Stealer`] handles.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// The result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// A task was stolen.
        Success(T),
        /// The operation lost a race and should be retried.
        Retry,
    }

    impl<T> Steal<T> {
        /// Whether this is `Retry`.
        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        /// Whether this is `Empty`.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// Returns this steal if decisive, otherwise evaluates `f`.
        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Empty => f(),
                s => s,
            }
        }
    }

    impl<T> FromIterator<Steal<T>> for Steal<T> {
        /// First `Success` wins; otherwise `Retry` if any attempt must be
        /// retried; otherwise `Empty`.
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for s in iter {
                match s {
                    Steal::Success(t) => return Steal::Success(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }

    fn locked<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        q.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A global FIFO task injector shared by all workers.
    #[derive(Debug)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        /// Pushes a task onto the global queue.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Steals one task from the global queue.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Steals a batch into `dest`'s local queue and pops one task.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = locked(&self.queue);
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Move up to half the remaining tasks (capped) to the worker.
            let batch = (q.len() / 2).min(16);
            if batch > 0 {
                let mut dq = locked(&dest.queue);
                for _ in 0..batch {
                    dq.push_back(q.pop_front().expect("len checked"));
                }
            }
            Steal::Success(first)
        }

        /// Whether the global queue is currently empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }
    }

    /// Which end of its queue a worker pops from.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Lifo,
        Fifo,
    }

    /// A worker-owned deque; other threads steal from the opposite end.
    #[derive(Debug)]
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    impl<T> Worker<T> {
        /// A worker that pops its most recently pushed task first.
        pub fn new_lifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Lifo }
        }

        /// A worker that pops its oldest task first.
        pub fn new_fifo() -> Self {
            Worker { queue: Arc::new(Mutex::new(VecDeque::new())), flavor: Flavor::Fifo }
        }

        /// Pushes a task onto the local queue.
        pub fn push(&self, task: T) {
            locked(&self.queue).push_back(task);
        }

        /// Pops the next local task.
        pub fn pop(&self) -> Option<T> {
            let mut q = locked(&self.queue);
            match self.flavor {
                Flavor::Lifo => q.pop_back(),
                Flavor::Fifo => q.pop_front(),
            }
        }

        /// Whether the local queue is currently empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.queue).is_empty()
        }

        /// A handle other threads can steal through.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    /// A stealing handle to some worker's queue (steals FIFO).
    #[derive(Debug)]
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { queue: Arc::clone(&self.queue) }
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the owning worker's queue.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.queue).pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }
}

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable for multiple producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable for multiple consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending into a channel with no receivers left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `t`, waking one waiting receiver.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            q.push_back(t);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(t) = q.pop_front() {
                    return Ok(t);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages; ends when senders disconnect.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn worker_lifo_order() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_refills_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty(), "batch should land in the worker queue");
        let mut seen = vec![0];
        while let Some(v) = w.pop() {
            seen.push(v);
        }
        while let Steal::Success(v) = inj.steal() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn steal_collect_prefers_success() {
        let all: Steal<u32> =
            vec![Steal::Empty, Steal::Retry, Steal::Success(7)].into_iter().collect();
        assert_eq!(all, Steal::Success(7));
        let none: Steal<u32> = vec![Steal::Empty, Steal::Empty].into_iter().collect();
        assert!(none.is_empty());
        let retry: Steal<u32> = vec![Steal::Empty, Steal::Retry].into_iter().collect();
        assert!(retry.is_retry());
    }

    #[test]
    fn channel_fan_in_fan_out() {
        let (tx, rx) = channel::unbounded();
        std::thread::scope(|s| {
            for t in 0..3 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let collector = s.spawn(move || {
                let mut got: Vec<i32> = rx.iter().collect();
                got.sort_unstable();
                got
            });
            assert_eq!(collector.join().unwrap(), (0..300).collect::<Vec<_>>());
        });
    }
}
