//! Offline, API-compatible subset of `serde_json`.
//!
//! [`to_string`]/[`to_string_pretty`] and [`from_str`] over the vendored
//! `serde` [`Value`] tree, with a self-contained JSON writer and a strict
//! recursive-descent parser (rejects trailing garbage, enforces a depth
//! limit instead of overflowing the stack).

pub use serde::Value;
use serde::{de, Deserialize, Serialize};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `t` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(t), &mut out, None, 0);
    Ok(out)
}

/// Serializes `t` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(t: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(t), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    serde::from_value(parse(s)?)
}

/// Parses a JSON string into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf, as upstream
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error("JSON nesting too deep".to_string()));
        }
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error(format!("expected ',' or ']' at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    entries.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error("invalid \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".to_string()))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error(format!("invalid number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<Vec<Option<u32>>> = vec![vec![Some(1), None], vec![]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,null],[]]");
        assert_eq!(from_str::<Vec<Vec<Option<u32>>>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tüñî".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("42 x").is_err());
        assert!(from_str::<Vec<u32>>("[1,]").is_err());
        assert!(from_str::<Vec<u32>>("[1 2]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u32>("\"str\"").is_err());
    }

    #[test]
    fn parses_objects_with_whitespace() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![
                ("a".into(), Value::Seq(vec![Value::UInt(1), Value::UInt(2)])),
                ("b".into(), Value::Null),
            ])
        );
    }

    #[test]
    fn pretty_output_reparses() {
        let v: Vec<(u32, u32)> = vec![(0, 1), (1, 2)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(u32, u32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str::<Value>(&deep).is_err());
    }
}
