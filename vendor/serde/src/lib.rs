//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no registry access, so this workspace
//! vendors the serde surface it uses. The data model is a JSON-shaped
//! [`Value`] tree rather than serde's visitor machinery: a
//! [`Serializer`] accepts one `Value`, a [`Deserializer`] yields one,
//! and the generic trait signatures (`serialize<S: Serializer>`,
//! `deserialize<D: Deserializer<'de>>`, `de::Error::custom`) match
//! upstream so hand-written impls compile unchanged.
//!
//! Proc-macro derives are unavailable offline, so `#[derive(Serialize,
//! Deserialize)]` is replaced by the declarative macros
//! [`impl_serde_struct!`] and [`impl_serde_newtype!`], which generate
//! impls in upstream's externally-tagged JSON encoding (structs as
//! objects keyed by field name, newtypes as their inner value).

use std::fmt;

/// A JSON-shaped value: the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object: ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

/// Serialization error machinery.
pub mod ser {
    use super::{de, Value};

    /// A sink accepting one serialized [`Value`].
    pub trait Serializer: Sized {
        /// The success type.
        type Ok;
        /// The error type.
        type Error: de::Error;
        /// Consumes the serializer with the final value.
        fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
    }

    /// A type that can serialize itself into any [`Serializer`].
    pub trait Serialize {
        /// Serializes `self` into `s`.
        fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error>;
    }
}

/// Deserialization error machinery.
pub mod de {
    use super::Value;
    use std::fmt;

    /// The error contract: constructible from any message.
    pub trait Error: Sized + fmt::Debug + fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }

    /// A source yielding one deserialized [`Value`].
    pub trait Deserializer<'de>: Sized {
        /// The error type.
        type Error: Error;
        /// Consumes the deserializer, producing its value.
        fn take_value(self) -> Result<Value, Self::Error>;
    }

    /// A type that can build itself from any [`Deserializer`].
    pub trait Deserialize<'de>: Sized {
        /// Deserializes a value from `d`.
        fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error>;
    }

    /// Removes and deserializes the field `name` from a decoded object.
    /// Used by [`crate::impl_serde_struct!`].
    pub fn take_field<'de, T: Deserialize<'de>, E: Error>(
        map: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<T, E> {
        let idx = map
            .iter()
            .position(|(k, _)| k == name)
            .ok_or_else(|| E::custom(format_args!("missing field `{name}`")))?;
        let (_, v) = map.swap_remove(idx);
        T::deserialize(crate::ValueDeserializer::<E>::new(v))
    }

    /// Deserializes a value with both type parameters inferred. Used by
    /// the impl macros where the target type comes from context.
    pub fn infer<'de, T: Deserialize<'de>, D: Deserializer<'de>>(d: D) -> Result<T, D::Error> {
        T::deserialize(d)
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

/// An infallible-by-construction error for in-memory serialization.
#[derive(Debug)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// A [`Serializer`] that materializes the [`Value`] tree.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_value(self, v: Value) -> Result<Value, ValueError> {
        Ok(v)
    }
}

/// Serializes `t` to an in-memory [`Value`] (cannot fail: the sink is
/// the identity).
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Value {
    t.serialize(ValueSerializer).expect("value serialization is infallible")
}

/// A [`Deserializer`] reading from an in-memory [`Value`], generic over
/// the caller's error type.
pub struct ValueDeserializer<E> {
    value: Value,
    _marker: std::marker::PhantomData<E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps `value` for deserialization.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value, _marker: std::marker::PhantomData }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;
    fn take_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

/// Deserializes `T` from an in-memory [`Value`].
pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(v: Value) -> Result<T, E> {
    T::deserialize(ValueDeserializer::<E>::new(v))
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::UInt(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                match d.take_value()? {
                    Value::UInt(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format_args!(
                            "integer {n} out of range for {}", stringify!($t)
                        ))),
                    other => Err(D::Error::custom(format_args!(
                        "expected unsigned integer, found {other:?}"
                    ))),
                }
            }
        }
    )+};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_sint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                s.serialize_value(if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) })
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                use de::Error;
                let wide: i64 = match d.take_value()? {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n).map_err(|_| {
                        D::Error::custom(format_args!("integer {n} overflows i64"))
                    })?,
                    other => {
                        return Err(D::Error::custom(format_args!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| D::Error::custom(format_args!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )+};
}
impl_serde_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Float(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_value()? {
            Value::Float(x) => Ok(x),
            Value::UInt(n) => Ok(n as f64),
            Value::Int(n) => Ok(n as f64),
            other => Err(D::Error::custom(format_args!("expected number, found {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format_args!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(format_args!("expected string, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(t) => s.serialize_value(to_value(t)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => Ok(Some(from_value(v)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(|t| to_value(t)).collect()))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use de::Error;
        match d.take_value()? {
            Value::Seq(items) => items.into_iter().map(from_value).collect(),
            other => Err(D::Error::custom(format_args!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(|t| to_value(t)).collect()))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Seq(vec![$(to_value(&self.$idx)),+]))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                const ARITY: usize = [$($idx),+].len();
                match d.take_value()? {
                    Value::Seq(items) if items.len() == ARITY => {
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            from_value::<$name, De::Error>(it.next().expect("arity checked"))?
                        },)+))
                    }
                    other => Err(<De::Error as de::Error>::custom(format_args!(
                        "expected {ARITY}-element array, found {other:?}"
                    ))),
                }
            }
        }
    )+};
}
impl_serde_tuple! {
    (T0: 0)
    (T0: 0, T1: 1)
    (T0: 0, T1: 1, T2: 2)
    (T0: 0, T1: 1, T2: 2, T3: 3)
}

// ---------------------------------------------------------------------
// Derive replacements
// ---------------------------------------------------------------------

/// Implements `Serialize`/`Deserialize` for a struct with named fields,
/// encoding it as an object keyed by field name (upstream derive
/// behavior). Usage: `serde::impl_serde_struct!(Stats { hits, misses });`
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize<S: $crate::Serializer>(
                &self,
                s: S,
            ) -> ::std::result::Result<S::Ok, S::Error> {
                s.serialize_value($crate::Value::Map(::std::vec![
                    $((::std::string::String::from(stringify!($field)),
                       $crate::to_value(&self.$field))),+
                ]))
            }
        }
        impl<'de> $crate::Deserialize<'de> for $ty {
            fn deserialize<D: $crate::Deserializer<'de>>(
                d: D,
            ) -> ::std::result::Result<Self, D::Error> {
                let v = $crate::Deserializer::take_value(d)?;
                let mut map = match v {
                    $crate::Value::Map(m) => m,
                    other => {
                        return ::std::result::Result::Err(<D::Error as $crate::de::Error>::custom(
                            ::std::format_args!("expected object, found {other:?}"),
                        ))
                    }
                };
                ::std::result::Result::Ok($ty {
                    $($field: $crate::de::take_field(&mut map, stringify!($field))?),+
                })
            }
        }
    };
}

/// Implements `Serialize`/`Deserialize` for a single-field tuple struct,
/// encoding it transparently as its inner value (upstream derive
/// behavior for newtypes). Usage: `serde::impl_serde_newtype!(NodeId);`
#[macro_export]
macro_rules! impl_serde_newtype {
    ($ty:ident) => {
        impl $crate::Serialize for $ty {
            fn serialize<S: $crate::Serializer>(
                &self,
                s: S,
            ) -> ::std::result::Result<S::Ok, S::Error> {
                $crate::Serialize::serialize(&self.0, s)
            }
        }
        impl<'de> $crate::Deserialize<'de> for $ty {
            fn deserialize<D: $crate::Deserializer<'de>>(
                d: D,
            ) -> ::std::result::Result<Self, D::Error> {
                ::std::result::Result::Ok($ty($crate::de::infer(d)?))
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair {
        left: u32,
        right: Option<u64>,
    }
    impl_serde_struct!(Pair { left, right });

    struct Id(pub u32);
    impl_serde_newtype!(Id);

    #[test]
    fn struct_encodes_as_object() {
        let v = to_value(&Pair { left: 3, right: None });
        assert_eq!(
            v,
            Value::Map(vec![("left".into(), Value::UInt(3)), ("right".into(), Value::Null),])
        );
        let back: Pair = from_value::<_, ValueError>(v).unwrap();
        assert_eq!(back.left, 3);
        assert_eq!(back.right, None);
    }

    #[test]
    fn newtype_is_transparent() {
        assert_eq!(to_value(&Id(9)), Value::UInt(9));
        let back: Id = from_value::<_, ValueError>(Value::UInt(9)).unwrap();
        assert_eq!(back.0, 9);
    }

    #[test]
    fn vec_of_tuples_round_trips() {
        let edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2)];
        let v = to_value(&edges);
        assert_eq!(
            v,
            Value::Seq(vec![
                Value::Seq(vec![Value::UInt(0), Value::UInt(1)]),
                Value::Seq(vec![Value::UInt(1), Value::UInt(2)]),
            ])
        );
        let back: Vec<(u32, u32)> = from_value::<_, ValueError>(v).unwrap();
        assert_eq!(back, edges);
    }

    #[test]
    fn missing_field_is_an_error() {
        let v = Value::Map(vec![("left".into(), Value::UInt(1))]);
        assert!(from_value::<Pair, ValueError>(v).is_err());
    }

    #[test]
    fn out_of_range_integer_is_an_error() {
        assert!(from_value::<u8, ValueError>(Value::UInt(300)).is_err());
        assert!(from_value::<u8, ValueError>(Value::Str("x".into())).is_err());
    }

    #[test]
    fn negative_integers_round_trip() {
        let v = to_value(&-5i32);
        assert_eq!(v, Value::Int(-5));
        assert_eq!(from_value::<i32, ValueError>(v).unwrap(), -5);
    }
}
